//! **Halo-overlap experiment** — the pipelined rank executor (persistent
//! workers, double-buffered channels, interior/edge split) against the
//! legacy snapshot-barrier baseline, on the HotSpot3D workload by
//! default or any library kernel via `--kernel star7|9pt|27pt|13pt`
//! (wide-footprint kernels drive the corner-halo channels every sweep).
//!
//! For each rank count the harness times three configurations —
//! snapshot (unprotected), pipelined (unprotected) and pipelined with
//! per-rank online ABFT — verifies all of them bitwise against the serial
//! reference, and reports per-iteration wall time, iterations/sec, the
//! pipeline's speedup over the snapshot baseline and the per-rank
//! halo-wait fraction (the slice of busy time a rank spends blocked on
//! neighbour rows, i.e. communication *not* hidden by computation).
//!
//! `--json PATH` additionally writes a machine-readable record tagged
//! with the kernel and grid shape; CI's bench-smoke job uses this to
//! publish `BENCH_dist*.json` per PR so the perf trajectory of the halo
//! pipeline is tracked over time, and builds the same binary with the
//! `hash-ghost-path` feature to gate the strip-indexed ghost path
//! against the PR 3 hash baseline.
//!
//! `--steps-per-exchange K` switches to the **deep-halo mode**: instead
//! of sweeping rank counts, the harness pins one rank grid and sweeps
//! the epoch length `k` over a doubling ladder up to `K`, measuring the
//! crossover temporal tiling buys — messages drop as `1/k` (one deep
//! exchange serves `k` sweeps) while bytes per exchange and the local
//! shell-decay arithmetic grow with the shell depth `k·r`. Every point
//! is verified bitwise against the serial reference and the message
//! ledger self-asserts the `1/k` law; `--json` publishes
//! `BENCH_deep_halo.json` with a `steps_per_exchange` tag on every
//! point, which CI's message-count gate re-checks.

use abft_bench::{Cli, GridArg};
use abft_core::AbftConfig;
use abft_dist::{run_distributed, DistConfig, DistReport, GridSpec, HaloMode};
use abft_grid::{BoundarySpec, Grid3D};
use abft_hotspot::{initial_temperature, synthetic_power, HotspotParams};
use abft_metrics::{write_csv, Table, Welford};
use abft_stencil::{Exec, Stencil3D, StencilSim};

struct Point {
    ranks: usize,
    grid: (usize, usize, usize),
    snapshot_s: f64,
    pipelined_s: f64,
    abft_s: f64,
    wait_frac_mean: f64,
    wait_frac_max: f64,
}

/// The benchmark workload shared by both modes: the HotSpot3D tile (with
/// its power-term constant) or a library kernel on the same temperature
/// field.
struct Workload {
    dims: (usize, usize, usize),
    kernel: &'static str,
    stencil: Stencil3D<f32>,
    constant: Option<Grid3D<f32>>,
    initial: Grid3D<f32>,
}

fn workload(cli: &Cli) -> Workload {
    // Default decomposition is y-slabs (`--grid RXxRY[xRZ]|auto` selects
    // a 2-D tile or 3-D brick rank grid and pins the sweep to its rank
    // count). `--large` selects the paper-scale 512×512 grid the CI
    // acceptance gate runs on.
    let (nx, ny, nz) = if cli.large {
        (512, 512, 8)
    } else {
        (64, 256, 4)
    };
    let params = HotspotParams::new(nx, ny, nz);
    let power = synthetic_power::<f32>(nx, ny, nz, cli.seed);
    let temp0 = initial_temperature(&params, &power);
    // `--kernel` swaps the HotSpot3D star for a library kernel on the
    // same temperature field (the power-term constant only applies to
    // the HotSpot workload).
    let (kernel, stencil, constant) = match cli.kernel {
        None => {
            let coeff = params.coefficients();
            let constant = Grid3D::from_fn(nx, ny, nz, |x, y, z| {
                (coeff.step_div_cap * power.at(x, y, z) as f64 + coeff.ct * params.amb_temp) as f32
            });
            ("hotspot3d", params.stencil::<f32>(), Some(constant))
        }
        Some(k) => (k.name(), k.stencil::<f32>(), None),
    };
    Workload {
        dims: (nx, ny, nz),
        kernel,
        stencil,
        constant,
        initial: temp0,
    }
}

fn main() {
    let cli = Cli::parse();
    if cli.steps_per_exchange.is_some() {
        return deep_halo_mode(&cli);
    }
    let w = workload(&cli);
    let (nx, ny, nz) = w.dims;
    let (kernel_name, stencil, constant, temp0) = (w.kernel, w.stencil, w.constant, w.initial);
    let iters = cli.iters.unwrap_or(48);
    let reps = cli.reps.div_ceil(10).max(3);
    let bounds = BoundarySpec::<f32>::clamp();

    // Serial reference for the bitwise equivalence check.
    let mut serial =
        StencilSim::new(temp0.clone(), stencil.clone(), bounds).with_exec(Exec::Serial);
    if let Some(c) = &constant {
        serial = serial.with_constant(c.clone());
    }
    for _ in 0..iters {
        serial.step();
    }

    eprintln!(
        "[exp_halo_overlap] {nx}x{ny}x{nz}, kernel {kernel_name}, {iters} iterations, \
         {reps} reps per point"
    );
    println!(
        "{:<6} {:>7} {:>14} {:>14} {:>9} {:>14} {:>10}",
        "ranks", "grid", "snapshot (s)", "pipelined (s)", "speedup", "abft pipe (s)", "wait (%)"
    );
    let mut table = Table::new(vec![
        "ranks",
        "grid",
        "kernel",
        "snapshot_s",
        "pipelined_s",
        "speedup",
        "abft_pipelined_s",
        "halo_wait_frac_mean",
        "halo_wait_frac_max",
    ]);
    let mut points = Vec::new();

    for ranks in cli.rank_counts() {
        // Wall times use the min over reps: on a timeshared host the min
        // is the least-noisy estimator of the achievable per-iteration
        // cost, which is what the CI perf gate tracks.
        let mut snap_t = f64::INFINITY;
        let mut pipe_t = f64::INFINITY;
        let mut abft_t = f64::INFINITY;
        let mut wait_mean = Welford::new();
        let mut wait_max = 0.0f64;
        let mut grid = (1, ranks, 1);
        for _ in 0..reps {
            let run = |cfg: DistConfig<f32>| -> DistReport<f32> {
                run_distributed(&temp0, &stencil, &bounds, constant.as_ref(), &cfg)
                    .expect("valid dist config")
            };
            let base = || DistConfig::<f32>::new(ranks, iters).with_grid_spec(cli.grid_spec());

            let snap = run(base().with_mode(HaloMode::Snapshot));
            snap_t = snap_t.min(snap.wall_s);
            assert_eq!(snap.global, *serial.current(), "snapshot diverged");
            grid = snap.grid;

            let pipe = run(base().with_mode(HaloMode::Pipelined));
            pipe_t = pipe_t.min(pipe.wall_s);
            assert_eq!(pipe.global, *serial.current(), "pipelined diverged");
            let mean_frac = pipe
                .ranks
                .iter()
                .map(|r| r.timing.halo_wait_fraction())
                .sum::<f64>()
                / ranks as f64;
            wait_mean.push(mean_frac);
            wait_max = wait_max.max(pipe.max_halo_wait_fraction());

            let prot = run(base()
                .with_abft(AbftConfig::<f32>::paper_defaults())
                .with_mode(HaloMode::Pipelined));
            abft_t = abft_t.min(prot.wall_s);
            assert_eq!(
                prot.total_stats().detections,
                0,
                "false positive at {ranks} ranks"
            );
        }

        let point = Point {
            ranks,
            grid,
            snapshot_s: snap_t,
            pipelined_s: pipe_t,
            abft_s: abft_t,
            wait_frac_mean: wait_mean.mean(),
            wait_frac_max: wait_max,
        };
        println!(
            "{:<6} {:>7} {:>14.4} {:>14.4} {:>8.2}x {:>14.4} {:>10.1}",
            point.ranks,
            format!("{}x{}x{}", point.grid.0, point.grid.1, point.grid.2),
            point.snapshot_s,
            point.pipelined_s,
            point.snapshot_s / point.pipelined_s,
            point.abft_s,
            100.0 * point.wait_frac_mean,
        );
        table.row(vec![
            point.ranks.to_string(),
            format!("{}x{}x{}", point.grid.0, point.grid.1, point.grid.2),
            kernel_name.to_string(),
            format!("{:.6}", point.snapshot_s),
            format!("{:.6}", point.pipelined_s),
            format!("{:.4}", point.snapshot_s / point.pipelined_s),
            format!("{:.6}", point.abft_s),
            format!("{:.4}", point.wait_frac_mean),
            format!("{:.4}", point.wait_frac_max),
        ]);
        points.push(point);
    }

    // Suffixed with every CLI axis that varies across CI's bench-smoke
    // steps (kernel, domain, rank-grid spec) so back-to-back runs never
    // clobber each other's trend data.
    let grid_tag = match cli.grid {
        None => "slabs".to_string(),
        Some(GridArg::Auto) => "auto".to_string(),
        Some(GridArg::Explicit(rx, ry, 1)) => format!("{rx}x{ry}"),
        Some(GridArg::Explicit(rx, ry, rz)) => format!("{rx}x{ry}x{rz}"),
    };
    let path = format!(
        "{}/exp_halo_overlap_{kernel_name}_{nx}x{ny}x{nz}_{grid_tag}.csv",
        cli.out
    );
    write_csv(&table, &path).expect("write CSV");
    println!("\n[csv] {path}");

    if let Some(json_path) = &cli.json {
        let json = render_json(nx, ny, nz, kernel_name, iters, reps, &points);
        if let Some(dir) = std::path::Path::new(json_path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create JSON output dir");
            }
        }
        std::fs::write(json_path, json).expect("write JSON");
        println!("[json] {json_path}");
    }
}

/// Hand-rolled JSON (the workspace vendors no serde): one record per rank
/// count with per-iteration wall times, iterations/sec and halo-wait
/// fractions — the schema CI's `BENCH_dist*.json` artifacts track per
/// PR. Every record (and the top level) is tagged with the kernel and
/// the grid shape; CI's schema check fails the job if those tags drift.
fn render_json(
    nx: usize,
    ny: usize,
    nz: usize,
    kernel: &str,
    iters: usize,
    reps: usize,
    points: &[Point],
) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"ranks\": {}, ",
                    "\"grid\": [{}, {}, {}], ",
                    "\"kernel\": \"{}\", ",
                    "\"snapshot_s_per_iter\": {:.6e}, ",
                    "\"pipelined_s_per_iter\": {:.6e}, ",
                    "\"speedup\": {:.4}, ",
                    "\"snapshot_iters_per_s\": {:.3}, ",
                    "\"pipelined_iters_per_s\": {:.3}, ",
                    "\"abft_pipelined_iters_per_s\": {:.3}, ",
                    "\"halo_wait_fraction_mean\": {:.4}, ",
                    "\"halo_wait_fraction_max\": {:.4}}}"
                ),
                p.ranks,
                p.grid.0,
                p.grid.1,
                p.grid.2,
                kernel,
                p.snapshot_s / iters as f64,
                p.pipelined_s / iters as f64,
                p.snapshot_s / p.pipelined_s,
                iters as f64 / p.snapshot_s,
                iters as f64 / p.pipelined_s,
                iters as f64 / p.abft_s,
                p.wait_frac_mean,
                p.wait_frac_max,
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"exp_halo_overlap\",\n  \"grid\": [{nx}, {ny}, {nz}],\n  \
         \"kernel\": \"{kernel}\",\n  \
         \"iters\": {iters},\n  \"reps\": {reps},\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// One epoch-length point of the deep-halo crossover study.
struct DeepPoint {
    k: usize,
    grid: (usize, usize, usize),
    snapshot_s: f64,
    pipelined_s: f64,
    abft_s: f64,
    msgs_sent: u64,
    msgs_recv: u64,
    epoch_messages: usize,
    wire_bytes_per_exchange: usize,
    wait_frac_max: f64,
}

/// The `--steps-per-exchange K` study: one rank grid, epoch lengths
/// swept over the doubling ladder `{1, 2, 4, …} ∪ {K}`. Each point runs
/// snapshot/pipelined/protected configs, verifies bitwise against the
/// serial reference, and reads the halo message ledger off the pipelined
/// report. With `iters` divisible by `k` the run posts exactly
/// `iters / k` exchanges, so total messages must scale as exactly `1/k`
/// — asserted here and re-checked by CI's gate on the published
/// `BENCH_deep_halo.json`.
fn deep_halo_mode(cli: &Cli) {
    let w = workload(cli);
    let (nx, ny, nz) = w.dims;
    let kmax = cli.steps_per_exchange.unwrap_or(1);
    let mut ks = vec![1usize];
    while ks.last().unwrap() * 2 <= kmax {
        ks.push(ks.last().unwrap() * 2);
    }
    if *ks.last().unwrap() != kmax {
        ks.push(kmax);
    }
    let iters = cli.iters.unwrap_or(24);
    let reps = cli.reps.div_ceil(10).max(3);
    // The crossover needs one fixed decomposition; an explicit `--grid`
    // pins it, the default is 4 y-slabs (bricks much thicker than the
    // deepest shell, so no extra producer bricks are recruited and the
    // message law is exact).
    let ranks = match cli.grid_spec() {
        GridSpec::Explicit { rx, ry, rz } => rx * ry * rz,
        _ => 4,
    };
    let bounds = BoundarySpec::<f32>::clamp();

    let mut serial =
        StencilSim::new(w.initial.clone(), w.stencil.clone(), bounds).with_exec(Exec::Serial);
    if let Some(c) = &w.constant {
        serial = serial.with_constant(c.clone());
    }
    for _ in 0..iters {
        serial.step();
    }

    eprintln!(
        "[exp_halo_overlap] deep-halo mode: {nx}x{ny}x{nz}, kernel {}, {ranks} ranks, \
         {iters} iterations, k in {ks:?}, {reps} reps per point",
        w.kernel
    );
    println!(
        "{:<3} {:>7} {:>13} {:>13} {:>13} {:>10} {:>10} {:>14} {:>9}",
        "k",
        "grid",
        "snapshot (s)",
        "pipelined (s)",
        "abft (s)",
        "msgs sent",
        "msgs/epoch",
        "wire B/exch",
        "wait (%)"
    );
    let mut table = Table::new(vec![
        "steps_per_exchange",
        "grid",
        "kernel",
        "snapshot_s",
        "pipelined_s",
        "abft_pipelined_s",
        "halo_msgs_sent",
        "halo_msgs_recv",
        "epoch_messages",
        "wire_bytes_per_exchange",
        "halo_wait_frac_max",
    ]);
    let mut points: Vec<DeepPoint> = Vec::new();

    for &k in &ks {
        let mut snap_t = f64::INFINITY;
        let mut pipe_t = f64::INFINITY;
        let mut abft_t = f64::INFINITY;
        let mut wait_max = 0.0f64;
        let mut grid = (1, ranks, 1);
        let mut msgs_sent = 0u64;
        let mut msgs_recv = 0u64;
        let mut epoch_messages = 0usize;
        let mut wire_bytes = 0usize;
        for _ in 0..reps {
            let run = |cfg: DistConfig<f32>| -> DistReport<f32> {
                run_distributed(&w.initial, &w.stencil, &bounds, w.constant.as_ref(), &cfg)
                    .expect("valid dist config")
            };
            let base = || {
                DistConfig::<f32>::new(ranks, iters)
                    .with_grid_spec(cli.grid_spec())
                    .with_steps_per_exchange(k)
            };

            let snap = run(base().with_mode(HaloMode::Snapshot));
            snap_t = snap_t.min(snap.wall_s);
            assert_eq!(snap.global, *serial.current(), "snapshot diverged at k={k}");

            let pipe = run(base().with_mode(HaloMode::Pipelined));
            pipe_t = pipe_t.min(pipe.wall_s);
            assert_eq!(
                pipe.global,
                *serial.current(),
                "pipelined diverged at k={k}"
            );
            assert_eq!(pipe.steps_per_exchange, k);
            grid = pipe.grid;
            wait_max = wait_max.max(pipe.max_halo_wait_fraction());
            msgs_sent = pipe.ranks.iter().map(|r| r.timing.halo_msgs_sent).sum();
            msgs_recv = pipe.ranks.iter().map(|r| r.timing.halo_msgs_recv).sum();
            let traffic = pipe.total_traffic();
            epoch_messages = traffic.epoch_messages;
            wire_bytes = traffic.wire_bytes();

            let prot = run(base()
                .with_abft(AbftConfig::<f32>::paper_defaults())
                .with_mode(HaloMode::Pipelined));
            abft_t = abft_t.min(prot.wall_s);
            assert_eq!(prot.total_stats().detections, 0, "false positive at k={k}");
        }

        // The 1/k message law, exact when every epoch is full-length.
        if iters.is_multiple_of(k) {
            let m1 = points.first().map_or(msgs_sent, |p| p.msgs_sent);
            assert_eq!(
                msgs_sent * k as u64,
                m1,
                "messages did not scale as 1/k at k={k}"
            );
            assert_eq!(msgs_sent, msgs_recv, "send/recv ledger mismatch at k={k}");
        }

        let point = DeepPoint {
            k,
            grid,
            snapshot_s: snap_t,
            pipelined_s: pipe_t,
            abft_s: abft_t,
            msgs_sent,
            msgs_recv,
            epoch_messages,
            wire_bytes_per_exchange: wire_bytes,
            wait_frac_max: wait_max,
        };
        println!(
            "{:<3} {:>7} {:>13.4} {:>13.4} {:>13.4} {:>10} {:>10} {:>14} {:>9.1}",
            point.k,
            format!("{}x{}x{}", point.grid.0, point.grid.1, point.grid.2),
            point.snapshot_s,
            point.pipelined_s,
            point.abft_s,
            point.msgs_sent,
            point.epoch_messages,
            point.wire_bytes_per_exchange,
            100.0 * point.wait_frac_max,
        );
        table.row(vec![
            point.k.to_string(),
            format!("{}x{}x{}", point.grid.0, point.grid.1, point.grid.2),
            w.kernel.to_string(),
            format!("{:.6}", point.snapshot_s),
            format!("{:.6}", point.pipelined_s),
            format!("{:.6}", point.abft_s),
            point.msgs_sent.to_string(),
            point.msgs_recv.to_string(),
            point.epoch_messages.to_string(),
            point.wire_bytes_per_exchange.to_string(),
            format!("{:.4}", point.wait_frac_max),
        ]);
        points.push(point);
    }
    println!("\nhalo messages scaled as 1/k on every full-epoch ladder point");

    let path = format!("{}/exp_deep_halo_{}_{nx}x{ny}x{nz}.csv", cli.out, w.kernel);
    write_csv(&table, &path).expect("write CSV");
    println!("[csv] {path}");

    if let Some(json_path) = &cli.json {
        let kernel = w.kernel;
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\"ranks\": {}, ",
                        "\"grid\": [{}, {}, {}], ",
                        "\"kernel\": \"{}\", ",
                        "\"steps_per_exchange\": {}, ",
                        "\"halo_msgs_sent\": {}, ",
                        "\"halo_msgs_recv\": {}, ",
                        "\"epoch_messages\": {}, ",
                        "\"wire_bytes_per_exchange\": {}, ",
                        "\"snapshot_iters_per_s\": {:.3}, ",
                        "\"pipelined_iters_per_s\": {:.3}, ",
                        "\"abft_pipelined_iters_per_s\": {:.3}, ",
                        "\"speedup_vs_k1\": {:.4}, ",
                        "\"halo_wait_fraction_max\": {:.4}}}"
                    ),
                    ranks,
                    p.grid.0,
                    p.grid.1,
                    p.grid.2,
                    kernel,
                    p.k,
                    p.msgs_sent,
                    p.msgs_recv,
                    p.epoch_messages,
                    p.wire_bytes_per_exchange,
                    iters as f64 / p.snapshot_s,
                    iters as f64 / p.pipelined_s,
                    iters as f64 / p.abft_s,
                    points[0].pipelined_s / p.pipelined_s,
                    p.wait_frac_max,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"experiment\": \"exp_deep_halo\",\n  \"grid\": [{nx}, {ny}, {nz}],\n  \
             \"kernel\": \"{kernel}\",\n  \"steps_per_exchange\": {kmax},\n  \
             \"iters\": {iters},\n  \"reps\": {reps},\n  \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        if let Some(dir) = std::path::Path::new(json_path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create JSON output dir");
            }
        }
        std::fs::write(json_path, json).expect("write JSON");
        println!("[json] {json_path}");
    }
}
