//! **Figure 8** — mean execution time (± std) of No-ABFT / Online ABFT /
//! Offline ABFT on HotSpot3D, error-free and with a single random
//! bit-flip, for tiles 64×64×8 (a) and 512×512×8 (b).
//!
//! Expected shape (paper §5.2): in the error-free case both ABFT variants
//! cost < ~8 % over No-ABFT; with a fault the Offline variant becomes
//! significantly slower (rollback + recomputation) while Online barely
//! moves.

use abft_bench::{fmt_pm, hotspot_campaign, overhead_pct, scenario_config, time_summary, Cli};
use abft_fault::{random_flips, BitFlip, Method};
use abft_metrics::{write_csv, Table};

fn main() {
    let cli = Cli::parse();
    cli.install_threads();

    let mut table = Table::new(vec![
        "tile",
        "scenario",
        "method",
        "mean time (s)",
        "std (s)",
        "overhead vs No-ABFT (%)",
    ]);

    for scenario in cli.scenarios() {
        // The large tile is ~60× the work of the small one: scale reps.
        let reps = if scenario.dims.0 >= 512 {
            cli.reps.div_ceil(10).max(3)
        } else {
            cli.reps
        };
        eprintln!(
            "[fig8] tile {} — {} reps x {} iterations",
            scenario.name, reps, scenario.iters
        );
        let campaign = hotspot_campaign(&scenario, cli.seed);
        let cfg = scenario_config(&scenario);
        let clean_plan: Vec<Option<BitFlip>> = vec![None; reps];
        let flips = random_flips(cli.seed ^ 0xf8, reps, scenario.iters, scenario.dims, 32);
        let flip_plan: Vec<Option<BitFlip>> = flips.into_iter().map(Some).collect();

        for (label, plan) in [("error-free", &clean_plan), ("single bit-flip", &flip_plan)] {
            let mut baseline = None;
            for method in Method::all() {
                let records = campaign.run_many(method, cfg, plan);
                let s = time_summary(&records);
                if method == Method::NoAbft {
                    baseline = Some(s.mean);
                }
                let ovh = baseline
                    .map(|b| format!("{:+.1}", overhead_pct(s.mean, b)))
                    .unwrap_or_default();
                println!(
                    "{:<10} {:<16} {:<15} {}  overhead {}%",
                    scenario.name,
                    label,
                    method.label(),
                    fmt_pm(&s),
                    ovh
                );
                table.row(vec![
                    scenario.name.to_string(),
                    label.to_string(),
                    method.label().to_string(),
                    format!("{:.6}", s.mean),
                    format!("{:.6}", s.std_dev),
                    ovh,
                ]);
            }
        }
    }

    let path = format!("{}/fig8_time.csv", cli.out);
    write_csv(&table, &path).expect("write CSV");
    println!("\n[csv] {path}");
}
