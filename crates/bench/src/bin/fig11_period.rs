//! **Figure 11** — mean execution time of the Offline ABFT method as a
//! function of the checkpoint/detection period Δ ∈ {1, 2, …, 128},
//! error-free and with a single injected bit-flip, for both tiles.
//!
//! Expected shape (paper §5.4): short periods pay per-period checkpoint
//! and rollforward costs; with faults, long periods pay a growing
//! recomputation cost; the sweet spot sits around Δ = 8–16.

use abft_bench::{fmt_pm, hotspot_campaign, scenario_config, time_summary, Cli};
use abft_fault::{random_flips, BitFlip, Method};
use abft_metrics::{write_csv, Table};

fn main() {
    let cli = Cli::parse();
    cli.install_threads();

    let periods: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128];
    let mut table = Table::new(vec![
        "tile",
        "period",
        "scenario",
        "mean time (s)",
        "std (s)",
        "rollback recomputed steps (mean)",
    ]);

    for scenario in cli.scenarios() {
        let reps = if scenario.dims.0 >= 512 {
            cli.reps.div_ceil(10).max(3)
        } else {
            cli.reps
        };
        eprintln!(
            "[fig11] tile {} — {} reps per period x {} periods",
            scenario.name,
            reps,
            periods.len()
        );
        let campaign = hotspot_campaign(&scenario, cli.seed);
        let clean_plan: Vec<Option<BitFlip>> = vec![None; reps];
        let flips = random_flips(cli.seed ^ 0xf11, reps, scenario.iters, scenario.dims, 32);
        let flip_plan: Vec<Option<BitFlip>> = flips.into_iter().map(Some).collect();

        for &period in &periods {
            if period > scenario.iters {
                continue;
            }
            let cfg = scenario_config(&scenario).with_period(period);
            for (label, plan) in [("error-free", &clean_plan), ("single bit-flip", &flip_plan)] {
                let records = campaign.run_many(Method::Offline, cfg, plan);
                let s = time_summary(&records);
                let redo: f64 = records
                    .iter()
                    .map(|r| r.stats.recomputed_steps as f64)
                    .sum::<f64>()
                    / records.len() as f64;
                println!(
                    "{:<10} Δ={:<4} {:<16} {}  redo {:.1}",
                    scenario.name,
                    period,
                    label,
                    fmt_pm(&s),
                    redo
                );
                table.row(vec![
                    scenario.name.to_string(),
                    period.to_string(),
                    label.to_string(),
                    format!("{:.6}", s.mean),
                    format!("{:.6}", s.std_dev),
                    format!("{redo:.2}"),
                ]);
            }
        }
    }

    let path = format!("{}/fig11_period.csv", cli.out);
    write_csv(&table, &path).expect("write CSV");
    println!("\n[csv] {path}");
}
