//! **Figure 9** — mean/median/maximum arithmetic error (Eq. 11, vs. the
//! error-free single-threaded reference) for the three methods, error-free
//! and with a single random bit-flip, for both tiles.
//!
//! Expected shape (paper §5.2): error-free ⇒ all methods < 1e-5;
//! with a fault ⇒ No-ABFT reaches astronomically large mean/median error,
//! Online keeps the median below ~1e-4, Offline cancels the error in most
//! cases (median 0).

use abft_bench::{error_summary, fmt_log, hotspot_campaign, scenario_config, Cli};
use abft_fault::{random_flips, BitFlip, Method};
use abft_metrics::{write_csv, Table};

fn main() {
    let cli = Cli::parse();
    cli.install_threads();

    let mut table = Table::new(vec![
        "tile",
        "scenario",
        "method",
        "mean l2",
        "median l2",
        "max l2",
        "detected",
    ]);

    for scenario in cli.scenarios() {
        let reps = if scenario.dims.0 >= 512 {
            cli.reps.div_ceil(10).max(3)
        } else {
            cli.reps
        };
        eprintln!(
            "[fig9] tile {} — {} reps x {} iterations",
            scenario.name, reps, scenario.iters
        );
        let campaign = hotspot_campaign(&scenario, cli.seed);
        let cfg = scenario_config(&scenario);
        let clean_plan: Vec<Option<BitFlip>> = vec![None; reps];
        let flips = random_flips(cli.seed ^ 0xf9, reps, scenario.iters, scenario.dims, 32);
        let flip_plan: Vec<Option<BitFlip>> = flips.into_iter().map(Some).collect();

        for (label, plan) in [("error-free", &clean_plan), ("single bit-flip", &flip_plan)] {
            for method in Method::all() {
                let records = campaign.run_many(method, cfg, plan);
                let s = error_summary(&records);
                let detected = records.iter().filter(|r| r.detected()).count();
                println!(
                    "{:<10} {:<16} {:<15} mean {:<11} median {:<11} max {:<11} detected {}/{}",
                    scenario.name,
                    label,
                    method.label(),
                    fmt_log(s.mean),
                    fmt_log(s.median),
                    fmt_log(s.max),
                    detected,
                    records.len()
                );
                table.row(vec![
                    scenario.name.to_string(),
                    label.to_string(),
                    method.label().to_string(),
                    fmt_log(s.mean),
                    fmt_log(s.median),
                    fmt_log(s.max),
                    format!("{detected}/{}", records.len()),
                ]);
            }
        }
    }

    let path = format!("{}/fig9_error.csv", cli.out);
    write_csv(&table, &path).expect("write CSV");
    println!("\n[csv] {path}");
}
