//! **Multi-error extension experiment** — the paper corrects one error
//! per layer per iteration (Fig. 6 pairs mismatches positionally) and
//! leaves simultaneous errors as future work. This harness injects
//! `k ∈ {1, 2, 3, 5}` simultaneous output flips per run and compares the
//! `Strict` policy (refuse ambiguous layers) against the `DeltaMatch`
//! extension (pair row/column mismatches by checksum-delta magnitude).
//!
//! Expected shape: both policies detect everything; `DeltaMatch` corrects
//! most multi-error layers (deltas rarely collide), keeping the final l2
//! error near the single-error level, while `Strict`'s error grows with
//! `k`. Offline rollback handles any `k` by construction.

use abft_bench::{fmt_log, hotspot_campaign, scenario_config, Cli};
use abft_core::MultiErrorPolicy;
use abft_fault::{random_flips, Fault, Method};
use abft_hotspot::Scenario;
use abft_metrics::{write_csv, Summary, Table};

fn main() {
    let cli = Cli::parse();
    cli.install_threads();
    let scenario = Scenario::tile_small();
    let campaign = hotspot_campaign(&scenario, cli.seed);
    let reps = cli.reps.div_ceil(2).max(10);
    eprintln!(
        "[exp_multi_error] tile {} — {} reps x k in {{1,2,3,5}}",
        scenario.name, reps
    );

    let mut table = Table::new(vec![
        "k",
        "policy",
        "mean l2",
        "median l2",
        "max l2",
        "corrected",
        "uncorrectable",
    ]);

    for k in [1usize, 2, 3, 5] {
        // k flips injected during the *same* iteration so collisions in a
        // layer are likely; detectable bits only (>= 20) so every fault is
        // visible to the checksums.
        for (policy, label) in [
            (MultiErrorPolicy::Strict, "Strict"),
            (MultiErrorPolicy::DeltaMatch, "DeltaMatch"),
        ] {
            let cfg = scenario_config(&scenario).with_policy(policy);
            let mut l2s = Vec::with_capacity(reps);
            let mut corrected = 0usize;
            let mut uncorrectable = 0usize;
            for rep in 0..reps {
                let seed = cli.seed ^ ((k as u64) << 32) ^ rep as u64;
                let flips = random_flips(seed, k, scenario.iters, scenario.dims, 32);
                let iter0 = flips[0].iteration;
                let faults: Vec<Fault> = flips
                    .into_iter()
                    .map(|mut f| {
                        f.iteration = iter0;
                        f.bit = 20 + (f.bit % 11); // detectable range
                        Fault::Output(f)
                    })
                    .collect();
                let r = campaign.run_once_multi(Method::Online, cfg, &faults);
                l2s.push(r.l2);
                corrected += r.stats.corrections;
                uncorrectable += r.stats.uncorrectable;
            }
            let s = Summary::from_sample(&l2s);
            println!(
                "k={k} {label:<11} mean {:<11} median {:<11} max {:<11} corrected {corrected:>4} uncorrectable {uncorrectable:>3}",
                fmt_log(s.mean),
                fmt_log(s.median),
                fmt_log(s.max),
            );
            table.row(vec![
                k.to_string(),
                label.to_string(),
                fmt_log(s.mean),
                fmt_log(s.median),
                fmt_log(s.max),
                corrected.to_string(),
                uncorrectable.to_string(),
            ]);
        }
    }

    let path = format!("{}/exp_multi_error.csv", cli.out);
    write_csv(&table, &path).expect("write CSV");
    println!("\n[csv] {path}");
}
