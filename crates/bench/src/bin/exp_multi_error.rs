//! **Multi-error extension experiment** — the paper corrects one error
//! per layer per iteration (Fig. 6 pairs mismatches positionally) and
//! leaves simultaneous errors as future work. This harness injects
//! `k ∈ {1, 2, 3, 5}` simultaneous output flips per run and compares the
//! `Strict` policy (refuse ambiguous layers) against the `DeltaMatch`
//! extension (pair row/column mismatches by checksum-delta magnitude).
//!
//! Expected shape: both policies detect everything; `DeltaMatch` corrects
//! most multi-error layers (deltas rarely collide), keeping the final l2
//! error near the single-error level, while `Strict`'s error grows with
//! `k`. Offline rollback handles any `k` by construction.
//!
//! The second half is the **recovery campaign**: mixed bit-flip +
//! rank-kill storms against the distributed substrate, sweeping the
//! checkpoint period Δ. Every campaign must come back **bitwise
//! identical** to the fault-free trajectory (kills repaired by rollback
//! and respawn, flips repaired in place by Eq. 10, uncorrectable storms
//! escalated to rollback) — any unrecovered campaign fails the binary,
//! which is what the CI `recovery-smoke` gate relies on. `--json PATH`
//! publishes the per-period ledger as `BENCH_recovery.json`.

use abft_bench::{fmt_log, hotspot_campaign, scenario_config, Cli};
use abft_checkpoint::CheckpointPolicy;
use abft_core::{AbftConfig, MultiErrorPolicy, VerifyCadence};
use abft_dist::{run_distributed, DistConfig, HaloMode};
use abft_fault::{random_flips, random_flips_at_bit, random_kills, Fault, Method};
use abft_grid::{BoundarySpec, Grid3D};
use abft_hotspot::Scenario;
use abft_metrics::{write_csv, RecoveryStats, Summary, Table};
use abft_stencil::Stencil3D;

/// One (rank grid, checkpoint period) point of the recovery campaign
/// ledger.
struct RecoveryPoint {
    grid: (usize, usize),
    period: usize,
    /// Sweeps batched per halo exchange during the campaigns (`k`).
    steps_per_exchange: usize,
    campaigns: usize,
    unrecovered: usize,
    stats: RecoveryStats,
}

/// Storm campaigns seeded deterministically, with both halo modes
/// alternating, swept over rank grids × checkpoint periods. The 2×2 grid
/// is the workhorse shape; the 1×4 slab grid has rank-graph diameter 3,
/// so with tight periods the pipeline's epoch skew crosses checkpoint
/// boundaries — the regime where survivors retain epochs newer than the
/// rollback target and replay must not trip over them. Even campaigns
/// are kill-only: rollback replay must reproduce the fault-free grid
/// **bitwise**. Odd campaigns add two correctable flips on top of the
/// kill: Eq. 10's in-place correction reconstructs from checksum deltas
/// in floating point, so those must land within the same `1e-9` residual
/// bound the fault-matrix suite holds single-flip runs to.
///
/// With `steps_per_exchange = k > 1` the same storms run against the
/// temporally tiled exchange (deep shells decayed locally for `k` sweeps
/// per exchange): kill-only campaigns additionally batch verification to
/// the exchange boundaries, so rollback replay must restore both the
/// brick and the carried checksum state; mixed campaigns keep per-sweep
/// verification so Eq. 10 repairs random flips in place mid-epoch. The
/// caller only passes periods aligned to `k` (the library rejects the
/// rest by construction).
fn recovery_campaigns(
    seed: u64,
    campaigns: usize,
    periods: &[usize],
    steps_per_exchange: usize,
) -> Vec<RecoveryPoint> {
    const NX: usize = 16;
    const NY: usize = 16;
    const NZ: usize = 4;
    const ITERS: usize = 24;
    const RANKS: usize = 4;
    let grids = [(2usize, 2usize), (1, 4)];
    let initial = Grid3D::from_fn(NX, NY, NZ, |x, y, z| {
        60.0 + ((x * 7 + y * 3 + z * 5) % 19) as f64 * 0.3
    });
    let stencil = Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1);
    let bounds = BoundarySpec::clamp();
    let modes = [HaloMode::Pipelined, HaloMode::Snapshot];
    // One fault-free reference per (grid, halo mode); every campaign must
    // reproduce its shape's reference exactly.
    let expect: Vec<Vec<Grid3D<f64>>> = grids
        .iter()
        .map(|(rx, ry)| {
            modes
                .iter()
                .map(|mode| {
                    let cfg = DistConfig::new(RANKS, ITERS)
                        .with_grid(*rx, *ry)
                        .with_abft(AbftConfig::<f64>::paper_defaults())
                        .with_mode(*mode);
                    run_distributed(&initial, &stencil, &bounds, None, &cfg)
                        .expect("fault-free reference")
                        .global
                })
                .collect()
        })
        .collect();

    let mut points = Vec::new();
    for (gi, &(rx, ry)) in grids.iter().enumerate() {
        let brick = (NX / rx, NY / ry, NZ);
        for &period in periods {
            let mut stats = RecoveryStats::default();
            let mut unrecovered = 0usize;
            for c in 0..campaigns {
                let storm_seed =
                    seed ^ ((gi as u64) << 52) ^ ((period as u64) << 40) ^ ((c as u64) << 8);
                let kill = random_kills(storm_seed, 1, RANKS, ITERS)[0];
                let mixed = c % 2 == 1;
                let mode_idx = c % modes.len();
                // Kill-only storms also batch verification to the
                // exchange boundary; mixed storms keep per-sweep verify
                // so randomly placed flips are repaired in place.
                let abft = if !mixed && steps_per_exchange > 1 {
                    AbftConfig::<f64>::paper_defaults().with_cadence(VerifyCadence::EpochBoundary)
                } else {
                    AbftConfig::<f64>::paper_defaults()
                };
                let mut cfg = DistConfig::new(RANKS, ITERS)
                    .with_grid(rx, ry)
                    .with_abft(abft)
                    .with_steps_per_exchange(steps_per_exchange)
                    .with_checkpoint(CheckpointPolicy::every(period))
                    .with_rank_kill(kill)
                    .with_mode(modes[mode_idx]);
                if mixed {
                    let flips = random_flips_at_bit(storm_seed ^ 0x5a5a, 2, ITERS, brick, 51);
                    for (i, flip) in flips.into_iter().enumerate() {
                        cfg = cfg.with_flip((storm_seed as usize + i * 7) % RANKS, flip);
                    }
                }
                match run_distributed(&initial, &stencil, &bounds, None, &cfg) {
                    Ok(rep) => {
                        // Rollback replay alone is bitwise; an in-place flip
                        // correction may leave float-reconstruction residual.
                        let recovered = if mixed {
                            rep.global.max_abs_diff(&expect[gi][mode_idx]) < 1e-9
                        } else {
                            rep.global == expect[gi][mode_idx]
                        };
                        if recovered {
                            stats.merge(&rep.recovery);
                        } else {
                            eprintln!(
                                "[exp_multi_error] UNRECOVERED (residual {:.3e}): \
                                 {rx}x{ry} Δ={period} k={steps_per_exchange} campaign {c} \
                                 kill rank {} at t={} mixed={mixed}",
                                rep.global.max_abs_diff(&expect[gi][mode_idx]),
                                kill.rank,
                                kill.iter
                            );
                            unrecovered += 1;
                        }
                    }
                    Err(e) => {
                        eprintln!(
                            "[exp_multi_error] UNRECOVERED (error {e}): {rx}x{ry} \
                             Δ={period} k={steps_per_exchange} campaign {c}"
                        );
                        unrecovered += 1;
                    }
                }
            }
            points.push(RecoveryPoint {
                grid: (rx, ry),
                period,
                steps_per_exchange,
                campaigns,
                unrecovered,
                stats,
            });
        }
    }
    points
}

fn main() {
    let cli = Cli::parse();
    cli.install_threads();
    let scenario = Scenario::tile_small();
    let campaign = hotspot_campaign(&scenario, cli.seed);
    let reps = cli.reps.div_ceil(2).max(10);
    eprintln!(
        "[exp_multi_error] tile {} — {} reps x k in {{1,2,3,5}}",
        scenario.name, reps
    );

    let mut table = Table::new(vec![
        "k",
        "policy",
        "mean l2",
        "median l2",
        "max l2",
        "corrected",
        "uncorrectable",
    ]);

    for k in [1usize, 2, 3, 5] {
        // k flips injected during the *same* iteration so collisions in a
        // layer are likely; detectable bits only (>= 20) so every fault is
        // visible to the checksums.
        for (policy, label) in [
            (MultiErrorPolicy::Strict, "Strict"),
            (MultiErrorPolicy::DeltaMatch, "DeltaMatch"),
        ] {
            let cfg = scenario_config(&scenario).with_policy(policy);
            let mut l2s = Vec::with_capacity(reps);
            let mut corrected = 0usize;
            let mut uncorrectable = 0usize;
            for rep in 0..reps {
                let seed = cli.seed ^ ((k as u64) << 32) ^ rep as u64;
                let flips = random_flips(seed, k, scenario.iters, scenario.dims, 32);
                let iter0 = flips[0].iteration;
                let faults: Vec<Fault> = flips
                    .into_iter()
                    .map(|mut f| {
                        f.iteration = iter0;
                        f.bit = 20 + (f.bit % 11); // detectable range
                        Fault::Output(f)
                    })
                    .collect();
                let r = campaign.run_once_multi(Method::Online, cfg, &faults);
                l2s.push(r.l2);
                corrected += r.stats.corrections;
                uncorrectable += r.stats.uncorrectable;
            }
            let s = Summary::from_sample(&l2s);
            println!(
                "k={k} {label:<11} mean {:<11} median {:<11} max {:<11} corrected {corrected:>4} uncorrectable {uncorrectable:>3}",
                fmt_log(s.mean),
                fmt_log(s.median),
                fmt_log(s.max),
            );
            table.row(vec![
                k.to_string(),
                label.to_string(),
                fmt_log(s.mean),
                fmt_log(s.median),
                fmt_log(s.max),
                corrected.to_string(),
                uncorrectable.to_string(),
            ]);
        }
    }

    let path = format!("{}/exp_multi_error.csv", cli.out);
    write_csv(&table, &path).expect("write CSV");
    println!("\n[csv] {path}");

    // ---- mixed bit-flip + rank-kill recovery campaigns (dist layer) ----
    let campaigns = cli.reps.div_ceil(4).max(6);
    let periods = [1usize, 2, 4, 8];
    // The same storms also run against the temporally tiled exchange:
    // `--steps-per-exchange K` pins one epoch length, the default sweeps
    // k ∈ {1, 2}. Checkpoint periods must land on exchange boundaries,
    // so each k only sweeps its aligned periods.
    let epoch_lens = match cli.steps_per_exchange {
        Some(k) => vec![k],
        None => vec![1, 2],
    };
    eprintln!(
        "[exp_multi_error] recovery: {campaigns} mixed-storm campaigns x Δ in {periods:?} \
         x k in {epoch_lens:?} on 2x2 and 1x4 rank grids"
    );
    let mut points = Vec::new();
    for &k in &epoch_lens {
        let aligned: Vec<usize> = periods.iter().copied().filter(|p| p % k == 0).collect();
        assert!(
            !aligned.is_empty(),
            "no checkpoint period in {periods:?} aligns with --steps-per-exchange {k}"
        );
        points.extend(recovery_campaigns(cli.seed, campaigns, &aligned, k));
    }

    let mut recovery_table = Table::new(vec![
        "rank grid",
        "checkpoint period",
        "steps_per_exchange",
        "campaigns",
        "unrecovered",
        "rank losses",
        "rollbacks",
        "steps lost",
        "recovery s",
        "checkpoints stored",
    ]);
    for p in &points {
        println!(
            "{}x{} Δ={} k={} campaigns {:>3} unrecovered {} losses {:>3} rollbacks {:>3} \
             steps_lost {:>4} recovery {:.3}s checkpoints {:>4}",
            p.grid.0,
            p.grid.1,
            p.period,
            p.steps_per_exchange,
            p.campaigns,
            p.unrecovered,
            p.stats.rank_losses,
            p.stats.rollbacks,
            p.stats.steps_lost,
            p.stats.recovery_s,
            p.stats.checkpoints_stored,
        );
        recovery_table.row(vec![
            format!("{}x{}", p.grid.0, p.grid.1),
            p.period.to_string(),
            p.steps_per_exchange.to_string(),
            p.campaigns.to_string(),
            p.unrecovered.to_string(),
            p.stats.rank_losses.to_string(),
            p.stats.rollbacks.to_string(),
            p.stats.steps_lost.to_string(),
            format!("{:.6}", p.stats.recovery_s),
            p.stats.checkpoints_stored.to_string(),
        ]);
    }
    let path = format!("{}/exp_multi_error_recovery.csv", cli.out);
    write_csv(&recovery_table, &path).expect("write CSV");
    println!("[csv] {path}");

    if let Some(json_path) = &cli.json {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"ranks\": 4, \"grid\": [{}, {}, 1], \"kernel\": \"star7\", \
                     \"recovery\": true, \"checkpoint_period\": {}, \
                     \"steps_per_exchange\": {}, \
                     \"campaigns\": {}, \"unrecovered\": {}, \
                     \"rank_losses\": {}, \"rollbacks\": {}, \"steps_lost\": {}, \
                     \"recovery_s\": {:.6}, \"checkpoints_stored\": {}}}",
                    p.grid.0,
                    p.grid.1,
                    p.period,
                    p.steps_per_exchange,
                    p.campaigns,
                    p.unrecovered,
                    p.stats.rank_losses,
                    p.stats.rollbacks,
                    p.stats.steps_lost,
                    p.stats.recovery_s,
                    p.stats.checkpoints_stored,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"experiment\": \"exp_multi_error\",\n  \"grid\": [16, 16, 4],\n  \
             \"kernel\": \"star7\",\n  \"iters\": 24,\n  \"recovery\": true,\n  \
             \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        if let Some(dir) = std::path::Path::new(json_path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create JSON output dir");
            }
        }
        std::fs::write(json_path, json).expect("write JSON");
        println!("[json] {json_path}");
    }

    // The gate the CI recovery-smoke job relies on: every mixed storm
    // must have been repaired exactly.
    let unrecovered: usize = points.iter().map(|p| p.unrecovered).sum();
    assert_eq!(
        unrecovered, 0,
        "{unrecovered} campaigns failed to recover bitwise"
    );
    println!("[recovery] all campaigns recovered bitwise");
}
