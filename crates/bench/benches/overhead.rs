//! Per-sweep protection overhead (the kernel-level basis of Fig. 8) and
//! the design-choice ablations called out in DESIGN.md §7:
//! fused-checksum cost (§3.2 "a single addition operation") and
//! maintain-row vs reconstruct-on-demand.

use abft_core::{AbftConfig, OfflineAbft, OnlineAbft};
use abft_hotspot::{build_sim, HotspotParams};
use abft_stencil::{ChecksumMode, Exec, NoHook, StencilSim};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sim(nx: usize, ny: usize, nz: usize) -> StencilSim<f32> {
    let params = HotspotParams::new(nx, ny, nz);
    build_sim::<f32>(&params, 7, Exec::Parallel)
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_overhead_128x128x8");
    group.sample_size(20);
    let dims = (128usize, 128usize, 8usize);

    group.bench_function("no_abft", |b| {
        let mut s = sim(dims.0, dims.1, dims.2);
        b.iter(|| {
            s.step();
            black_box(s.iteration());
        });
    });

    group.bench_function("fused_col_checksum_only", |b| {
        let mut s = sim(dims.0, dims.1, dims.2);
        let mut col = vec![0.0f32; dims.2 * dims.1];
        b.iter(|| {
            s.step_with_col(&NoHook, &mut col);
            black_box(col[0]);
        });
    });

    group.bench_function("fused_rowcol_checksums", |b| {
        let mut s = sim(dims.0, dims.1, dims.2);
        let mut row = vec![0.0f32; dims.2 * dims.0];
        let mut col = vec![0.0f32; dims.2 * dims.1];
        b.iter(|| {
            s.step_with_rowcol(&NoHook, &mut row, &mut col);
            black_box(col[0]);
        });
    });

    group.bench_function("online_abft", |b| {
        let mut s = sim(dims.0, dims.1, dims.2);
        let mut abft = OnlineAbft::new(&s, AbftConfig::<f32>::paper_defaults());
        b.iter(|| {
            black_box(abft.step(&mut s, &NoHook).detections);
        });
    });

    group.bench_function("online_abft_maintain_row", |b| {
        let mut s = sim(dims.0, dims.1, dims.2);
        let cfg = AbftConfig::<f32>::paper_defaults().with_maintain_row(true);
        let mut abft = OnlineAbft::new(&s, cfg);
        b.iter(|| {
            black_box(abft.step(&mut s, &NoHook).detections);
        });
    });

    group.bench_function("offline_abft_period16", |b| {
        let mut s = sim(dims.0, dims.1, dims.2);
        let cfg = AbftConfig::<f32>::paper_defaults().with_period(16);
        let mut abft = OfflineAbft::new(&s, cfg);
        b.iter(|| {
            black_box(abft.step(&mut s, &NoHook).verified);
        });
    });

    group.finish();
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_parallelism_128x128x8");
    group.sample_size(20);
    for (name, exec) in [("serial", Exec::Serial), ("parallel", Exec::Parallel)] {
        group.bench_function(name, |b| {
            let params = HotspotParams::new(128, 128, 8);
            let mut s = build_sim::<f32>(&params, 7, exec);
            b.iter(|| {
                s.step();
                black_box(s.iteration());
            });
        });
    }
    group.finish();
}

fn bench_checksum_mode_cost(c: &mut Criterion) {
    // Isolated cost of the fused accumulation: a raw sweep through the
    // executor with and without the checksum pass.
    let mut group = c.benchmark_group("fused_accumulation_256x256x4");
    group.sample_size(20);
    let params = HotspotParams::new(256, 256, 4);
    group.bench_function("mode_none", |b| {
        let mut s = build_sim::<f32>(&params, 9, Exec::Serial);
        b.iter(|| {
            s.step_full(&NoHook, &abft_grid::NoGhosts, ChecksumMode::None);
            black_box(s.iteration());
        });
    });
    group.bench_function("mode_col", |b| {
        let mut s = build_sim::<f32>(&params, 9, Exec::Serial);
        let mut col = vec![0.0f32; 4 * 256];
        b.iter(|| {
            s.step_full(
                &NoHook,
                &abft_grid::NoGhosts,
                ChecksumMode::Col { col: &mut col },
            );
            black_box(col[0]);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_overhead,
    bench_serial_vs_parallel,
    bench_checksum_mode_cost
);
criterion_main!(benches);
