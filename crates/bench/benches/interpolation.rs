//! Checksum-computation and interpolation microbenchmarks, backing the
//! complexity claims of Theorem 1: interpolating a checksum vector costs
//! `O(k²·n)` per layer — independent of the domain volume — while
//! recomputing it from data costs `O(nx·ny)`.

use abft_core::{capture_all_layers, compute_col_into, ChecksumState, Interpolator, StripSet};
use abft_grid::{BoundarySpec, Grid3D, NoGhosts};
use abft_stencil::{Stencil2D, Stencil3D};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn grid(n: usize) -> Grid3D<f64> {
    Grid3D::from_fn(n, n, 1, |x, y, _| ((x * 13 + y * 7) % 97) as f64)
}

fn bench_direct_vs_interpolated(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum_cost_vs_domain_size");
    group.sample_size(20);
    for n in [64usize, 128, 256, 512] {
        let g = grid(n);
        let stencil = Stencil2D::<f64>::five_point(0.6, 0.1, 0.1).into_3d();
        let bounds = BoundarySpec::clamp();
        let interp = Interpolator::new(&stencil, &bounds, None, (n, n, 1));
        let cs = ChecksumState::compute(&g, false);
        let mut out = vec![0.0f64; n];

        group.bench_with_input(BenchmarkId::new("direct_from_data", n), &n, |b, _| {
            b.iter(|| {
                compute_col_into(&g, &mut out);
                black_box(out[0]);
            });
        });
        group.bench_with_input(BenchmarkId::new("interpolated_1d", n), &n, |b, _| {
            b.iter(|| {
                interp.interpolate_col(&cs.col, &StripSet::None, &NoGhosts, &mut out);
                black_box(out[0]);
            });
        });
    }
    group.finish();
}

fn bench_tap_count_scaling(c: &mut Criterion) {
    // O(k²·n): widening stencils on a general (zero) boundary exercise
    // both the tap loop (k) and the per-tap O(|offset|) corrections.
    let mut group = c.benchmark_group("interpolation_vs_tap_count_256");
    group.sample_size(20);
    let n = 256usize;
    let g = grid(n);
    for half_width in [1isize, 2, 4, 8] {
        let mut taps = vec![(0isize, 0isize, 0isize, 0.5f64)];
        for m in 1..=half_width {
            let w = 0.5 / (2.0 * half_width as f64);
            taps.push((m, 0, 0, w));
            taps.push((-m, 0, 0, w));
        }
        let stencil = Stencil3D::from_tuples(&taps);
        let bounds = BoundarySpec::zero();
        let interp = Interpolator::new(&stencil, &bounds, None, (n, n, 1));
        let strips = capture_all_layers(&g, interp.col_strip_width(), 0);
        let cs = ChecksumState::compute(&g, false);
        let mut out = vec![0.0f64; n];
        group.bench_with_input(
            BenchmarkId::new("zero_bounds_general_path", half_width),
            &half_width,
            |b, _| {
                b.iter(|| {
                    interp.interpolate_col(
                        &cs.col,
                        &StripSet::Strips(&strips),
                        &NoGhosts,
                        &mut out,
                    );
                    black_box(out[0]);
                });
            },
        );
    }
    group.finish();
}

fn bench_strip_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip_capture_512");
    group.sample_size(20);
    let g = grid(512);
    group.bench_function("capture_width_2", |b| {
        b.iter(|| {
            black_box(capture_all_layers(&g, 2, 2).len());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_direct_vs_interpolated,
    bench_tap_count_scaling,
    bench_strip_capture
);
criterion_main!(benches);
