//! Offline ABFT cost as a function of the detection period Δ — the
//! kernel-level basis of Fig. 11: short periods pay checkpoint +
//! rollforward every few sweeps, long periods amortise them.

use abft_core::{AbftConfig, OfflineAbft};
use abft_hotspot::{build_sim, HotspotParams};
use abft_stencil::{Exec, NoHook};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_window_64x64x8");
    group.sample_size(10);
    let params = HotspotParams::new(64, 64, 8);
    for period in [1usize, 4, 16, 64] {
        // One verified window = `period` sweeps + one verification +
        // one checkpoint; report per-iteration throughput so the series
        // is directly comparable across periods.
        group.throughput(Throughput::Elements(period as u64));
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            let mut sim = build_sim::<f32>(&params, 11, Exec::Parallel);
            let cfg = AbftConfig::<f32>::paper_defaults().with_period(p);
            let mut abft = OfflineAbft::new(&sim, cfg);
            b.iter(|| {
                for _ in 0..p {
                    black_box(abft.step(&mut sim, &NoHook).verified);
                }
            });
        });
    }
    group.finish();
}

fn bench_rollback_cost(c: &mut Criterion) {
    // Cost of a faulty window: detection at the end of the window forces
    // rollback + Δ recomputed sweeps (the "single injected bit-flip"
    // series of Fig. 11).
    let mut group = c.benchmark_group("offline_faulty_window_64x64x8");
    group.sample_size(10);
    let params = HotspotParams::new(64, 64, 8);
    for period in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            let cfg = AbftConfig::<f32>::paper_defaults().with_period(p);
            let hook = move |x: usize, y: usize, z: usize, v: f32| {
                if (x, y, z) == (10, 10, 2) {
                    v + 1000.0
                } else {
                    v
                }
            };
            b.iter(|| {
                // Fresh protector per window so every window contains one
                // fault and exactly one rollback.
                let mut sim = build_sim::<f32>(&params, 11, Exec::Parallel);
                let mut abft = OfflineAbft::new(&sim, cfg);
                abft.step(&mut sim, &hook);
                for _ in 1..p {
                    abft.step(&mut sim, &NoHook);
                }
                black_box(abft.stats().rollbacks);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_period, bench_rollback_cost);
criterion_main!(benches);
