//! Integration tests of the distributed-memory substrate against the
//! serial reference, with and without per-rank protection, on the
//! HotSpot3D workload.

use proptest::prelude::*;
use stencil_abft::dist::{run_distributed, DistConfig, HaloMode};
use stencil_abft::hotspot::HotspotParams;
use stencil_abft::prelude::*;

fn hotspot_pieces(nx: usize, ny: usize, nz: usize) -> (Grid3D<f64>, Stencil3D<f64>, Grid3D<f64>) {
    let params = HotspotParams::new(nx, ny, nz);
    let power = stencil_abft::hotspot::synthetic_power::<f64>(nx, ny, nz, 17);
    let temp0 = stencil_abft::hotspot::initial_temperature(&params, &power);
    let c = params.coefficients();
    let constant = Grid3D::from_fn(nx, ny, nz, |x, y, z| {
        c.step_div_cap * power.at(x, y, z) + c.ct * params.amb_temp
    });
    (temp0, params.stencil::<f64>(), constant)
}

fn serial_run(
    initial: &Grid3D<f64>,
    stencil: &Stencil3D<f64>,
    constant: &Grid3D<f64>,
    iters: usize,
) -> Grid3D<f64> {
    let mut sim = StencilSim::new(initial.clone(), stencil.clone(), BoundarySpec::clamp())
        .with_constant(constant.clone())
        .with_exec(Exec::Serial);
    for _ in 0..iters {
        sim.step();
    }
    sim.current().clone()
}

#[test]
fn hotspot_distributed_matches_serial_bitwise() {
    let (initial, stencil, constant) = hotspot_pieces(16, 24, 4);
    let expect = serial_run(&initial, &stencil, &constant, 20);
    for ranks in [1usize, 2, 4, 6] {
        for mode in [HaloMode::Pipelined, HaloMode::Snapshot] {
            let cfg = DistConfig::<f64>::new(ranks, 20).with_mode(mode);
            let rep = run_distributed(
                &initial,
                &stencil,
                &BoundarySpec::clamp(),
                Some(&constant),
                &cfg,
            )
            .expect("valid config");
            assert_eq!(rep.global, expect, "{ranks} ranks diverged ({mode:?})");
        }
    }
}

#[test]
fn hotspot_distributed_protected_is_clean_and_exact() {
    let (initial, stencil, constant) = hotspot_pieces(16, 24, 4);
    let expect = serial_run(&initial, &stencil, &constant, 20);
    let cfg = DistConfig::new(3, 20).with_abft(AbftConfig::<f64>::paper_defaults());
    let rep = run_distributed(
        &initial,
        &stencil,
        &BoundarySpec::clamp(),
        Some(&constant),
        &cfg,
    )
    .expect("valid config");
    assert_eq!(rep.global, expect);
    assert_eq!(rep.total_stats().detections, 0);
}

#[test]
fn faults_in_multiple_ranks_are_corrected_independently() {
    let (initial, stencil, constant) = hotspot_pieces(16, 30, 4);
    let expect = serial_run(&initial, &stencil, &constant, 24);
    let cfg = DistConfig::new(3, 24)
        .with_abft(AbftConfig::<f64>::paper_defaults())
        .with_flip(
            0,
            BitFlip {
                iteration: 5,
                x: 3,
                y: 4,
                z: 1,
                bit: 52,
            },
        )
        .with_flip(
            2,
            BitFlip {
                iteration: 13,
                x: 10,
                y: 2,
                z: 3,
                bit: 51,
            },
        );
    let rep = run_distributed(
        &initial,
        &stencil,
        &BoundarySpec::clamp(),
        Some(&constant),
        &cfg,
    )
    .expect("valid config");
    let total = rep.total_stats();
    assert_eq!(total.detections, 2);
    assert_eq!(total.corrections, 2);
    assert_eq!(rep.ranks[0].stats.corrections, 1);
    assert_eq!(rep.ranks[2].stats.corrections, 1);
    let l2 = l2_error(&expect, &rep.global);
    assert!(l2 < 1e-8, "l2 after dual correction: {l2}");
}

#[test]
fn hotspot_2d_grid_matches_serial_bitwise() {
    let (initial, stencil, constant) = hotspot_pieces(18, 24, 4);
    let expect = serial_run(&initial, &stencil, &constant, 16);
    for (rx, ry) in [(2usize, 2usize), (3, 2), (2, 3)] {
        for mode in [HaloMode::Pipelined, HaloMode::Snapshot] {
            let cfg = DistConfig::<f64>::new(rx * ry, 16)
                .with_grid(rx, ry)
                .with_mode(mode);
            let rep = run_distributed(
                &initial,
                &stencil,
                &BoundarySpec::clamp(),
                Some(&constant),
                &cfg,
            )
            .expect("valid config");
            assert_eq!(rep.grid, (rx, ry, 1));
            assert_eq!(rep.global, expect, "{rx}x{ry} grid diverged ({mode:?})");
        }
    }
}

#[test]
fn hotspot_3d_brick_grid_matches_serial_bitwise() {
    let (initial, stencil, constant) = hotspot_pieces(18, 24, 4);
    let expect = serial_run(&initial, &stencil, &constant, 16);
    for (rx, ry, rz) in [(1usize, 2usize, 2usize), (2, 2, 2), (1, 1, 2)] {
        for mode in [HaloMode::Pipelined, HaloMode::Snapshot] {
            let cfg = DistConfig::<f64>::new(rx * ry * rz, 16)
                .with_grid3(rx, ry, rz)
                .with_mode(mode);
            let rep = run_distributed(
                &initial,
                &stencil,
                &BoundarySpec::clamp(),
                Some(&constant),
                &cfg,
            )
            .expect("valid config");
            assert_eq!(rep.grid, (rx, ry, rz));
            assert_eq!(
                rep.global, expect,
                "{rx}x{ry}x{rz} bricks diverged ({mode:?})"
            );
        }
    }
}

proptest! {
    // CI raises the case count through PROPTEST_CASES (see the vendored
    // shim's `with_cases_env`); 12 keeps local `cargo test` quick.
    #![proptest_config(ProptestConfig::with_cases_env(12))]

    #[test]
    fn distributed_equivalence_over_rank_grids(
        rx in 1usize..=3,
        ry in 1usize..=3,
        // Sweeps per halo exchange: k > 1 exchanges a depth-k·r shell
        // once per epoch and decays it locally, and must stay bitwise
        // interchangeable with the per-step protocol.
        k in 1usize..=3,
        iters in 1usize..=12,
        boundary in prop_oneof![
            Just(Boundary::Clamp),
            Just(Boundary::Periodic),
            Just(Boundary::Zero),
            Just(Boundary::Reflect),
        ],
        mode in prop_oneof![Just(HaloMode::Pipelined), Just(HaloMode::Snapshot)],
    ) {
        let (initial, stencil, constant) = hotspot_pieces(10, 18, 3);
        let bounds = BoundarySpec { x: Boundary::Clamp, y: boundary, z: Boundary::Clamp };
        let mut sim = StencilSim::new(initial.clone(), stencil.clone(), bounds)
            .with_constant(constant.clone())
            .with_exec(Exec::Serial);
        for _ in 0..iters {
            sim.step();
        }
        let cfg = DistConfig::<f64>::new(rx * ry, iters)
            .with_grid(rx, ry)
            .with_steps_per_exchange(k)
            .with_mode(mode);
        let rep = run_distributed(&initial, &stencil, &bounds, Some(&constant), &cfg)
            .expect("valid config");
        prop_assert_eq!(rep.grid, (rx, ry, 1));
        prop_assert_eq!(rep.steps_per_exchange, k);
        prop_assert_eq!(&rep.global, sim.current());
    }
}
