//! Regression test for f32 checksum precision on wide domains.
//!
//! With naive f32 accumulation, a 512-wide line sum drifts by up to
//! ~n/2 ulps; over a couple hundred iterations the drift between the
//! fused (data-side) and interpolated (state-side) checksums crossed the
//! paper's ε = 1e-5 and produced **false positives** on the paper's own
//! 512×512×8 tile. Checksums are therefore accumulated in f64 everywhere
//! (sweep fusion, direct recomputation, interpolation). These tests pin
//! that down.

use stencil_abft::prelude::*;

#[test]
fn error_free_f32_run_with_512_wide_lines_never_flags() {
    // 512-wide lines (the failure axis), thin in y/z to stay fast.
    let initial = Grid3D::from_fn(512, 12, 2, |x, y, z| {
        80.0f32 + ((x * 7 + y * 3 + z) % 13) as f32 * 0.3
    });
    let stencil = Stencil3D::seven_point(0.4f32, 0.12, 0.08, 0.1);
    let mut sim = StencilSim::new(initial, stencil, BoundarySpec::clamp()).with_exec(Exec::Serial);
    let mut abft = OnlineAbft::new(&sim, AbftConfig::<f32>::paper_defaults());
    for t in 0..256 {
        let out = abft.step(&mut sim, &NoHook);
        assert!(out.is_clean(), "false positive at iteration {t}");
    }
}

#[test]
fn error_free_f32_run_with_512_wide_columns_never_flags() {
    // The row-checksum direction: ny = 512 sums along y.
    let initial = Grid3D::from_fn(12, 512, 2, |x, y, z| {
        80.0f32 + ((x * 3 + y * 7 + z) % 11) as f32 * 0.4
    });
    let stencil = Stencil3D::seven_point(0.4f32, 0.12, 0.08, 0.1);
    let mut sim = StencilSim::new(initial, stencil, BoundarySpec::clamp()).with_exec(Exec::Serial);
    let cfg = AbftConfig::<f32>::paper_defaults().with_maintain_row(true);
    let mut abft = OnlineAbft::new(&sim, cfg);
    for t in 0..256 {
        let out = abft.step(&mut sim, &NoHook);
        assert!(out.is_clean(), "false positive at iteration {t}");
    }
}

#[test]
fn wide_f32_offline_windows_never_flag() {
    let initial = Grid3D::from_fn(512, 12, 2, |x, y, z| {
        80.0f32 + ((x * 5 + y * 3 + z) % 7) as f32 * 0.5
    });
    let stencil = Stencil3D::seven_point(0.4f32, 0.12, 0.08, 0.1);
    let mut sim = StencilSim::new(initial, stencil, BoundarySpec::clamp()).with_exec(Exec::Serial);
    let cfg = AbftConfig::<f32>::paper_defaults().with_period(16);
    let mut abft = OfflineAbft::new(&sim, cfg);
    for t in 0..128 {
        let out = abft.step(&mut sim, &NoHook);
        assert!(!out.detected, "offline false positive at iteration {t}");
    }
}

#[test]
fn faults_still_detected_on_wide_lines() {
    // Precision work must not have dulled the detector.
    let initial = Grid3D::from_fn(512, 12, 2, |x, y, z| {
        80.0f32 + ((x * 7 + y * 3 + z) % 13) as f32 * 0.3
    });
    let stencil = Stencil3D::seven_point(0.4f32, 0.12, 0.08, 0.1);
    let mut sim = StencilSim::new(initial, stencil, BoundarySpec::clamp()).with_exec(Exec::Serial);
    let mut abft = OnlineAbft::new(&sim, AbftConfig::<f32>::paper_defaults());
    let hook = |x: usize, y: usize, z: usize, v: f32| {
        if (x, y, z) == (300, 6, 1) {
            v + 5.0 // well above ε·|b| ≈ 1e-5·512·80 ≈ 0.41
        } else {
            v
        }
    };
    let out = abft.step(&mut sim, &hook);
    assert_eq!(out.detections, 1);
    assert_eq!(out.corrections.len(), 1);
    assert_eq!(
        (
            out.corrections[0].x,
            out.corrections[0].y,
            out.corrections[0].z
        ),
        (300, 6, 1)
    );
}
