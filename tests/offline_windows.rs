//! Integration tests of the offline protector's windowing, rollback and
//! finalization semantics across periods and multiple faults.

use stencil_abft::core::{AbftConfig, OfflineAbft};
use stencil_abft::fault::{BitFlip, FlipHook};
use stencil_abft::grid::{Boundary, BoundarySpec, Grid3D};
use stencil_abft::stencil::{Exec, NoHook, Stencil3D, StencilSim};

fn make_sim(bounds: BoundarySpec<f64>) -> StencilSim<f64> {
    let g = Grid3D::from_fn(14, 12, 3, |x, y, z| {
        70.0 + ((x * 5 + y * 3 + z * 11) % 17) as f64 * 0.4
    });
    StencilSim::new(g, Stencil3D::seven_point(0.4, 0.12, 0.08, 0.1), bounds).with_exec(Exec::Serial)
}

fn reference_after(iters: usize, bounds: BoundarySpec<f64>) -> Grid3D<f64> {
    let mut sim = make_sim(bounds);
    for _ in 0..iters {
        sim.step();
    }
    sim.current().clone()
}

#[test]
fn two_faults_in_different_windows_both_rolled_back() {
    let bounds = BoundarySpec::clamp();
    let mut sim = make_sim(bounds);
    let cfg = AbftConfig::<f64>::paper_defaults().with_period(8);
    let mut abft = OfflineAbft::new(&sim, cfg);

    let f1 = FlipHook::<f64>::new(BitFlip {
        iteration: 3,
        x: 5,
        y: 5,
        z: 1,
        bit: 52,
    });
    let f2 = FlipHook::<f64>::new(BitFlip {
        iteration: 19,
        x: 9,
        y: 2,
        z: 2,
        bit: 53,
    });

    for t in 0..24 {
        match t {
            3 => abft.step(&mut sim, &f1),
            19 => abft.step(&mut sim, &f2),
            _ => abft.step(&mut sim, &NoHook),
        };
    }
    let stats = abft.stats();
    assert_eq!(stats.rollbacks, 2);
    assert_eq!(stats.recomputed_steps, 16);
    assert_eq!(sim.current(), &reference_after(24, bounds));
}

#[test]
fn fault_in_same_window_as_verification_boundary() {
    // Fault on the very last iteration of a window: still caught by that
    // window's verification.
    let bounds = BoundarySpec::clamp();
    let mut sim = make_sim(bounds);
    let cfg = AbftConfig::<f64>::paper_defaults().with_period(4);
    let mut abft = OfflineAbft::new(&sim, cfg);
    let hook = FlipHook::<f64>::new(BitFlip {
        iteration: 3,
        x: 2,
        y: 7,
        z: 0,
        bit: 54,
    });
    let mut detected_at = None;
    for t in 0..8 {
        let out = if t == 3 {
            abft.step(&mut sim, &hook)
        } else {
            abft.step(&mut sim, &NoHook)
        };
        if out.detected {
            detected_at = Some(t);
        }
    }
    assert_eq!(detected_at, Some(3), "caught at the window boundary");
    assert_eq!(sim.current(), &reference_after(8, bounds));
}

#[test]
fn finalize_catches_tail_faults_beyond_the_last_window() {
    let bounds = BoundarySpec::clamp();
    let mut sim = make_sim(bounds);
    let cfg = AbftConfig::<f64>::paper_defaults().with_period(10);
    let mut abft = OfflineAbft::new(&sim, cfg);
    let hook = FlipHook::<f64>::new(BitFlip {
        iteration: 13, // after the first (and only full) window
        x: 4,
        y: 4,
        z: 1,
        bit: 55,
    });
    for t in 0..15 {
        if t == 13 {
            abft.step(&mut sim, &hook);
        } else {
            abft.step(&mut sim, &NoHook);
        }
    }
    // Without finalize the tail corruption would persist.
    let out = abft.finalize(&mut sim);
    assert!(out.verified && out.detected);
    assert_eq!(out.recomputed_steps, 5);
    assert_eq!(sim.current(), &reference_after(15, bounds));
}

#[test]
fn offline_with_general_boundaries_and_faults() {
    // Zero boundaries force the strip-history path through rollback.
    let bounds = BoundarySpec::uniform(Boundary::Zero);
    let mut sim = make_sim(bounds);
    let cfg = AbftConfig::<f64>::paper_defaults().with_period(6);
    let mut abft = OfflineAbft::new(&sim, cfg);
    let hook = FlipHook::<f64>::new(BitFlip {
        iteration: 8,
        x: 6,
        y: 6,
        z: 1,
        bit: 52,
    });
    for t in 0..18 {
        if t == 8 {
            abft.step(&mut sim, &hook);
        } else {
            abft.step(&mut sim, &NoHook);
        }
    }
    assert_eq!(abft.stats().rollbacks, 1);
    assert_eq!(sim.current(), &reference_after(18, bounds));
}

#[test]
fn checkpoint_footprint_is_one_domain_copy() {
    let sim = make_sim(BoundarySpec::clamp());
    let abft = OfflineAbft::new(&sim, AbftConfig::<f64>::paper_defaults());
    let domain_bytes = 14 * 12 * 3 * 8;
    let checksum_bytes = 3 * 12 * 8;
    assert_eq!(abft.checkpoint_bytes(), domain_bytes + checksum_bytes);
}
