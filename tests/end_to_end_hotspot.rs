//! End-to-end integration tests on the paper's evaluation application:
//! protected HotSpot3D runs across the whole stack
//! (hotspot → stencil → core → fault → metrics).

use stencil_abft::fault::{random_flips, BitFlip, Campaign, Method};
use stencil_abft::hotspot::{build_sim, Scenario};
use stencil_abft::prelude::*;

fn tiny_campaign(seed: u64) -> Campaign<f32, impl Fn() -> StencilSim<f32>> {
    let scenario = Scenario::tile_tiny();
    let params = scenario.params();
    let factory = move || build_sim::<f32>(&params, seed, Exec::Serial);
    Campaign::new(factory, scenario.iters)
}

#[test]
fn error_free_protected_runs_are_bitwise_identical_to_unprotected() {
    let campaign = tiny_campaign(5);
    let cfg = AbftConfig::<f32>::paper_defaults().with_period(8);
    for method in Method::all() {
        let r = campaign.run_once(method, cfg, None);
        assert_eq!(r.l2, 0.0, "{method:?} perturbed the data");
        assert!(!r.detected(), "{method:?} raised a false positive");
    }
}

#[test]
fn campaign_over_random_flips_matches_paper_shape() {
    // A miniature Fig. 9: online bounds the error, offline erases
    // detected errors, no-ABFT can blow up.
    let campaign = tiny_campaign(6);
    let scenario = Scenario::tile_tiny();
    let cfg = AbftConfig::<f32>::paper_defaults().with_period(8);
    let flips = random_flips(99, 12, scenario.iters, scenario.dims, 32);
    let plan: Vec<Option<BitFlip>> = flips.into_iter().map(Some).collect();

    let no = campaign.run_many(Method::NoAbft, cfg, &plan);
    let on = campaign.run_many(Method::Online, cfg, &plan);
    let off = campaign.run_many(Method::Offline, cfg, &plan);

    let max =
        |rs: &[stencil_abft::fault::RunRecord]| rs.iter().map(|r| r.l2).fold(0.0f64, f64::max);
    // Every injected error that the protectors detect is handled; the
    // offline scheme ends bit-exact whenever it detected the fault.
    for r in &off {
        if r.detected() {
            assert_eq!(r.l2, 0.0, "offline failed to erase a detected error");
        }
    }
    // Online never ends worse than unprotected on the same fault.
    for (o, n) in on.iter().zip(&no) {
        if n.l2.is_finite() {
            assert!(
                o.l2 <= n.l2.max(1e-6) * 1.001,
                "online worse than unprotected: {} vs {}",
                o.l2,
                n.l2
            );
        }
    }
    // And strictly better in aggregate when anything detectable struck.
    if no.iter().any(|r| r.detected() || r.l2 > 1.0) {
        assert!(max(&on) <= max(&no));
    }
}

#[test]
fn sign_bit_flip_is_always_detected_and_fixed_online() {
    let campaign = tiny_campaign(8);
    let scenario = Scenario::tile_tiny();
    let cfg = AbftConfig::<f32>::paper_defaults();
    for rep in 0..5 {
        let flip = BitFlip {
            iteration: 3 + rep,
            x: 2 + rep,
            y: 5,
            z: rep % 4,
            bit: 31,
        };
        let r = campaign.run_once(Method::Online, cfg, Some(flip));
        assert!(r.detected(), "sign flip missed at rep {rep}");
        assert_eq!(r.stats.corrections, 1);
        assert!(r.l2 < 1e-2, "rep {rep}: l2 = {}", r.l2);
        let _ = scenario;
    }
}

#[test]
fn low_mantissa_bits_are_below_threshold_as_in_fig10() {
    // Bits 0..=9 of f32 on ~80-valued data change the value by less than
    // ε·|checksum|: undetectable by design (paper Fig. 10, bits 0..12).
    let campaign = tiny_campaign(9);
    let cfg = AbftConfig::<f32>::paper_defaults();
    for bit in [0u32, 3, 6, 9] {
        let flip = BitFlip {
            iteration: 4,
            x: 3,
            y: 3,
            z: 1,
            bit,
        };
        let r = campaign.run_once(Method::Online, cfg, Some(flip));
        assert!(!r.detected(), "bit {bit} unexpectedly detected");
        // The leftover error is itself negligible.
        assert!(r.l2 < 1e-2, "bit {bit}: l2 = {}", r.l2);
    }
}

#[test]
fn offline_period_sweep_recovers_and_costs_recomputation() {
    let campaign = tiny_campaign(10);
    let scenario = Scenario::tile_tiny();
    for period in [1usize, 4, 8, 16] {
        let cfg = AbftConfig::<f32>::paper_defaults().with_period(period);
        let flip = BitFlip {
            iteration: 9,
            x: 4,
            y: 4,
            z: 2,
            bit: 28,
        };
        let r = campaign.run_once(Method::Offline, cfg, Some(flip));
        assert!(r.detected(), "Δ={period}: fault missed");
        assert_eq!(r.l2, 0.0, "Δ={period}: error not erased");
        assert_eq!(r.stats.rollbacks, 1);
        // Recomputed steps never exceed the window length.
        assert!(r.stats.recomputed_steps <= period.min(scenario.iters));
    }
}

#[test]
fn parallel_and_serial_protected_runs_agree() {
    let scenario = Scenario::tile_tiny();
    let params = scenario.params();
    let cfg = AbftConfig::<f32>::paper_defaults();
    let run = |exec: Exec| {
        let mut sim = build_sim::<f32>(&params, 3, exec);
        let mut abft = OnlineAbft::new(&sim, cfg);
        for _ in 0..scenario.iters {
            abft.step(&mut sim, &NoHook);
        }
        sim.current().clone()
    };
    assert_eq!(run(Exec::Serial), run(Exec::Parallel));
}

#[test]
fn hotspot_large_preset_has_paper_parameters() {
    let s = Scenario::tile_large();
    assert_eq!(s.dims, (512, 512, 8));
    assert_eq!(s.iters, 256);
    // Spot-check that the big tile builds and steps (one iteration only).
    let params = s.params();
    let mut sim = build_sim::<f32>(&params, 1, Exec::Parallel);
    let mut abft = OnlineAbft::new(&sim, AbftConfig::<f32>::paper_defaults());
    let out = abft.step(&mut sim, &NoHook);
    assert!(out.is_clean());
}
