//! Property-based validation of Theorem 1: for *random* stencils, domains
//! and boundary conditions, the interpolated checksum vectors equal the
//! checksums computed from the swept data (up to floating-point rounding).
//!
//! This is the load-bearing invariant of the whole paper; everything else
//! (detection, location, correction) rests on it.

use proptest::prelude::*;
use stencil_abft::core::{capture_all_layers, ChecksumState, Interpolator, StripSet};
use stencil_abft::grid::{Boundary, BoundarySpec, Grid3D, NoGhosts};
use stencil_abft::stencil::{sweep, ChecksumMode, Exec, NoHook, Stencil3D};

/// Strategy: a random stencil with 1..=9 taps, offsets in [-2, 2], and
/// weights in [-1, 1].
fn stencil_strategy() -> impl Strategy<Value = Stencil3D<f64>> {
    proptest::collection::vec((-2isize..=2, -2isize..=2, -1isize..=1, -1.0f64..1.0), 1..=9)
        .prop_map(|taps| Stencil3D::from_tuples(&taps))
}

fn boundary_strategy() -> impl Strategy<Value = Boundary<f64>> {
    prop_oneof![
        Just(Boundary::Clamp),
        Just(Boundary::Periodic),
        Just(Boundary::Zero),
        (-3.0f64..3.0).prop_map(Boundary::Constant),
        Just(Boundary::Reflect),
    ]
}

fn grid_strategy() -> impl Strategy<Value = Grid3D<f64>> {
    // Dimensions comfortably above the maximum stencil extent (2).
    (5usize..=9, 5usize..=9, 3usize..=5, any::<u64>()).prop_map(|(nx, ny, nz, seed)| {
        Grid3D::from_fn(nx, ny, nz, |x, y, z| {
            // Cheap deterministic pseudo-noise in [-2, 2].
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((x + 31 * y + 977 * z) as u64)
                .wrapping_mul(1442695040888963407);
            ((h >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interpolated_checksums_equal_computed_checksums(
        stencil in stencil_strategy(),
        bx in boundary_strategy(),
        by in boundary_strategy(),
        bz in boundary_strategy(),
        src in grid_strategy(),
        with_constant in any::<bool>(),
        use_strips in any::<bool>(),
    ) {
        let (nx, ny, nz) = src.dims();
        let bounds = BoundarySpec { x: bx, y: by, z: bz };
        let constant = with_constant.then(|| {
            Grid3D::from_fn(nx, ny, nz, |x, y, z| ((x * y + z) % 5) as f64 * 0.1)
        });

        let mut dst = Grid3D::zeros(nx, ny, nz);
        sweep(
            &src, &mut dst, &stencil, &bounds, constant.as_ref(),
            &NoGhosts, &NoHook, ChecksumMode::None, Exec::Serial,
        );

        let cs_t = ChecksumState::compute(&src, true);
        let cs_t1 = ChecksumState::compute(&dst, true);
        let interp = Interpolator::new(&stencil, &bounds, constant.as_ref(), (nx, ny, nz));

        let strips;
        let source = if use_strips {
            let w = interp.col_strip_width().max(interp.row_strip_width());
            strips = capture_all_layers(&src, w, w);
            StripSet::Strips(&strips)
        } else {
            StripSet::Grid(&src)
        };

        let mut col_i = vec![0.0; nz * ny];
        interp.interpolate_col(&cs_t.col, &source, &NoGhosts, &mut col_i);
        let mut row_i = vec![0.0; nz * nx];
        interp.interpolate_row(cs_t.row.as_ref().unwrap(), &source, &NoGhosts, &mut row_i);

        // Tolerance: values are O(1), vectors sum O(10) entries with up to
        // 9 taps; 1e-9 leaves ~1e5 ulps of headroom while catching any
        // structural error.
        for (k, (&a, &b)) in col_i.iter().zip(&cs_t1.col).enumerate() {
            prop_assert!((a - b).abs() < 1e-9,
                "col[{k}]: interpolated {a} vs computed {b} (bounds {bounds:?})");
        }
        for (k, (&a, &b)) in row_i.iter().zip(cs_t1.row.as_ref().unwrap()).enumerate() {
            prop_assert!((a - b).abs() < 1e-9,
                "row[{k}]: interpolated {a} vs computed {b} (bounds {bounds:?})");
        }
    }

    #[test]
    fn fused_checksums_equal_direct_sums(
        stencil in stencil_strategy(),
        bx in boundary_strategy(),
        src in grid_strategy(),
    ) {
        let (nx, ny, nz) = src.dims();
        let bounds = BoundarySpec { x: bx, y: Boundary::Clamp, z: Boundary::Clamp };
        let mut dst = Grid3D::zeros(nx, ny, nz);
        let mut row = vec![0.0; nz * nx];
        let mut col = vec![0.0; nz * ny];
        sweep(
            &src, &mut dst, &stencil, &bounds, None, &NoGhosts, &NoHook,
            ChecksumMode::RowCol { row: &mut row, col: &mut col }, Exec::Parallel,
        );
        let direct = ChecksumState::compute(&dst, true);
        for (a, b) in col.iter().zip(&direct.col) {
            prop_assert!((a - b).abs() < 1e-10);
        }
        for (a, b) in row.iter().zip(direct.row.as_ref().unwrap()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_bitwise(
        stencil in stencil_strategy(),
        src in grid_strategy(),
    ) {
        let (nx, ny, nz) = src.dims();
        let bounds = BoundarySpec::<f64>::clamp();
        let run = |exec| {
            let mut dst = Grid3D::zeros(nx, ny, nz);
            sweep(&src, &mut dst, &stencil, &bounds, None, &NoGhosts, &NoHook,
                  ChecksumMode::None, exec);
            dst
        };
        prop_assert_eq!(run(Exec::Serial), run(Exec::Parallel));
    }
}
