//! Property-based validation of detection (Theorem 2), location and
//! correction (Eq. 10): a corruption injected at a random point and
//! iteration is located at exactly its coordinates and corrected back to
//! the reference trajectory — for random stencils and boundary kinds.

use proptest::prelude::*;
use stencil_abft::core::{AbftConfig, OnlineAbft};
use stencil_abft::grid::{Boundary, BoundarySpec, Grid3D};
use stencil_abft::stencil::{Exec, NoHook, Stencil3D, StencilSim};

/// A *stable* random stencil: weights positive, normalised to sum 1, so
/// repeated application neither explodes nor destroys signal scale.
fn stable_stencil_strategy() -> impl Strategy<Value = Stencil3D<f64>> {
    proptest::collection::vec((-1isize..=1, -1isize..=1, -1isize..=1, 0.05f64..1.0), 3..=7)
        .prop_map(|mut taps| {
            let total: f64 = taps.iter().map(|t| t.3).sum();
            for t in &mut taps {
                t.3 /= total;
            }
            Stencil3D::from_tuples(&taps)
        })
}

fn boundary_strategy() -> impl Strategy<Value = Boundary<f64>> {
    prop_oneof![
        Just(Boundary::Clamp),
        Just(Boundary::Periodic),
        Just(Boundary::Zero),
        Just(Boundary::Constant(1.0)),
        Just(Boundary::Reflect),
    ]
}

fn base_grid(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3D<f64> {
    Grid3D::from_fn(nx, ny, nz, |x, y, z| {
        let h = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((x + 37 * y + 1009 * z) as u64)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        50.0 + ((h >> 11) as f64 / (1u64 << 53) as f64) * 10.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn injected_error_is_located_and_corrected(
        stencil in stable_stencil_strategy(),
        bound in boundary_strategy(),
        seed in any::<u64>(),
        t_inj in 0usize..6,
        ex in 0usize..8,
        ey in 0usize..7,
        ez in 0usize..3,
        delta in prop_oneof![Just(10.0f64), Just(-25.0), Just(300.0)],
    ) {
        let (nx, ny, nz) = (8usize, 7usize, 3usize);
        let bounds = BoundarySpec { x: bound, y: bound, z: bound };
        let grid = base_grid(nx, ny, nz, seed);

        let mut sim = StencilSim::new(grid.clone(), stencil.clone(), bounds)
            .with_exec(Exec::Serial);
        let mut reference = StencilSim::new(grid, stencil, bounds).with_exec(Exec::Serial);
        let mut abft = OnlineAbft::new(&sim, AbftConfig::<f64>::paper_defaults());

        let hook = move |x: usize, y: usize, z: usize, v: f64| {
            if (x, y, z) == (ex, ey, ez) { v + delta } else { v }
        };

        let mut corrected_at = None;
        for t in 0..8 {
            let out = if t == t_inj {
                abft.step(&mut sim, &hook)
            } else {
                abft.step(&mut sim, &NoHook)
            };
            reference.step();
            if t == t_inj {
                prop_assert_eq!(out.detections, 1, "fault not detected");
                prop_assert_eq!(out.corrections.len(), 1);
                corrected_at = Some((out.corrections[0].x, out.corrections[0].y,
                                     out.corrections[0].z));
            } else {
                prop_assert!(out.is_clean(), "false positive at t={t}: {out:?}");
            }
        }
        prop_assert_eq!(corrected_at, Some((ex, ey, ez)), "wrong location");
        let resid = sim.current().max_abs_diff(reference.current());
        prop_assert!(resid < 1e-8, "residual after correction: {resid}");
    }

    #[test]
    fn error_free_runs_never_flag(
        stencil in stable_stencil_strategy(),
        bound in boundary_strategy(),
        seed in any::<u64>(),
    ) {
        let bounds = BoundarySpec { x: bound, y: bound, z: bound };
        let grid = base_grid(9, 8, 3, seed);
        let mut sim = StencilSim::new(grid, stencil, bounds).with_exec(Exec::Serial);
        let mut abft = OnlineAbft::new(&sim, AbftConfig::<f64>::paper_defaults());
        for t in 0..10 {
            let out = abft.step(&mut sim, &NoHook);
            prop_assert!(out.is_clean(), "false positive at t={t}");
        }
    }

    #[test]
    fn corruption_below_threshold_is_silent(
        seed in any::<u64>(),
        t_inj in 0usize..5,
    ) {
        // A perturbation far below ε·|checksum| must not fire — detection
        // honours its advertised sensitivity (no flaky thresholds).
        let grid = base_grid(8, 8, 2, seed);
        let stencil = Stencil3D::seven_point(0.4f64, 0.1, 0.1, 0.1);
        let mut sim = StencilSim::new(grid, stencil, BoundarySpec::clamp())
            .with_exec(Exec::Serial);
        let mut abft = OnlineAbft::new(&sim, AbftConfig::<f64>::paper_defaults());
        let hook = |x: usize, y: usize, z: usize, v: f64| {
            if (x, y, z) == (4, 4, 1) { v + 1e-13 } else { v }
        };
        for t in 0..6 {
            let out = if t == t_inj {
                abft.step(&mut sim, &hook)
            } else {
                abft.step(&mut sim, &NoHook)
            };
            prop_assert!(out.is_clean());
        }
    }
}
