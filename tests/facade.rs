//! API-surface tests of the facade crate: everything a downstream user
//! reaches for must be importable from `stencil_abft::prelude` and wired
//! together without referencing internal crates.

use stencil_abft::prelude::*;

#[test]
fn prelude_covers_the_quickstart_flow() {
    let initial = Grid3D::from_fn(16, 16, 1, |x, y, _| (x * y) as f64);
    let mut sim = StencilSim::new(
        initial,
        Stencil2D::jacobi_heat(0.2f64).into_3d(),
        BoundarySpec::clamp(),
    )
    .with_exec(Exec::Serial);
    let mut abft = OnlineAbft::new(&sim, AbftConfig::<f64>::paper_defaults());
    for _ in 0..5 {
        assert!(abft.step(&mut sim, &NoHook).is_clean());
    }
    let stats: ProtectorStats = abft.stats();
    assert_eq!(stats.steps, 5);
}

#[test]
fn prelude_covers_offline_and_campaign_types() {
    let initial = Grid3D::filled(12, 12, 2, 1.0f32);
    let sim = StencilSim::new(
        initial,
        Stencil3D::seven_point(0.4f32, 0.1, 0.1, 0.1),
        BoundarySpec::periodic(),
    )
    .with_exec(Exec::Serial);
    let mut sim = sim;
    let mut offline = OfflineAbft::new(&sim, AbftConfig::<f32>::paper_defaults().with_period(2));
    offline.step(&mut sim, &NoHook);
    offline.step(&mut sim, &NoHook);
    assert_eq!(offline.stats().verifications, 1);

    // Campaign + fault types.
    let _m: [Method; 3] = Method::all();
    let flip = BitFlip {
        iteration: 0,
        x: 1,
        y: 1,
        z: 0,
        bit: 31,
    };
    let hook = FlipHook::<f32>::new(flip);
    let v: f32 = hook.transform(1, 1, 0, 2.0);
    assert_eq!(v, -2.0);
}

#[test]
fn submodules_are_reachable() {
    // Spot-check each re-exported crate through the facade paths.
    let _ = stencil_abft::num::relative_error(1.0f64, 1.0);
    let g = stencil_abft::grid::Grid2D::<f32>::zeros(2, 2);
    assert_eq!(g.len(), 4);
    let s = stencil_abft::stencil::Stencil2D::<f64>::four_point_average();
    assert_eq!(s.len(), 4);
    let cp = stencil_abft::checkpoint::CheckpointStore::<f32>::new();
    assert!(!cp.has_snapshot());
    assert_eq!(stencil_abft::fault::detection_floor(1e-5, 64, 80.0), 0.0512);
    let t = stencil_abft::metrics::Table::new(vec!["a"]);
    assert!(t.is_empty());
    let sc = stencil_abft::hotspot::Scenario::tile_small();
    assert_eq!(sc.dims, (64, 64, 8));
    let p = stencil_abft::dist::Partition::new(8, 2);
    assert_eq!(p.size(0), 4);
}

#[test]
fn l2_and_timer_utilities() {
    let a = Grid3D::filled(4, 4, 1, 1.0f64);
    let mut b = a.clone();
    b.set(0, 0, 0, 2.0);
    assert_eq!(l2_error(&a, &b), 1.0);
    let (x, secs) = Timer::time(|| 21 * 2);
    assert_eq!(x, 42);
    assert!(secs >= 0.0);
    let s = Summary::from_sample(&[1.0, 2.0, 3.0]);
    assert_eq!(s.median, 2.0);
}
