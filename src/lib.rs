//! # stencil-abft
//!
//! A production-quality Rust implementation of
//!
//! > A. Cavelan, F. M. Ciorba, **Algorithm-Based Fault Tolerance for
//! > Parallel Stencil Computations**, IEEE CLUSTER 2019
//! > (arXiv:1909.00709).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`num`] | `abft-num` | the [`num::Real`] float abstraction (f32/f64, bit flips) |
//! | [`grid`] | `abft-grid` | dense 2-D/3-D grids, boundary conditions, double buffering |
//! | [`stencil`] | `abft-stencil` | stencil kernels, serial/rayon sweeps, fused checksums, hooks |
//! | [`core`] | `abft-core` | **the paper's contribution**: checksum interpolation (Thm. 1), detection (Thm. 2), correction (Eq. 10), online/offline protectors |
//! | [`checkpoint`] | `abft-checkpoint` | in-memory checkpoint/rollback |
//! | [`fault`] | `abft-fault` | bit-flip injection and campaign driver (§5.1) |
//! | [`metrics`] | `abft-metrics` | l2 error (Eq. 11), statistics, timers, tables |
//! | [`hotspot`] | `abft-hotspot` | HotSpot3D (Rodinia) port — the paper's evaluation app |
//! | [`dist`] | `abft-dist` | distributed-memory simulation: pipelined halo exchange, per-rank ABFT |
//!
//! ## Quick start
//!
//! Protect a 2-D Jacobi heat kernel with online ABFT:
//!
//! ```
//! use stencil_abft::prelude::*;
//!
//! let initial = Grid3D::from_fn(32, 32, 1, |x, y, _| (x + y) as f32);
//! let mut sim = StencilSim::new(
//!     initial,
//!     Stencil2D::jacobi_heat(0.2f32).into_3d(),
//!     BoundarySpec::clamp(),
//! );
//! let mut abft = OnlineAbft::new(&sim, AbftConfig::<f32>::paper_defaults());
//! for _ in 0..100 {
//!     let outcome = abft.step(&mut sim, &NoHook);
//!     assert!(outcome.is_clean());
//! }
//! ```
//!
//! See `examples/` for runnable programs (quickstart, 2-D heat diffusion
//! under every boundary condition, the paper's HotSpot3D scenario, a fault
//! campaign, and a distributed halo-exchange run) and `crates/bench` for
//! the binaries regenerating every table and figure of the paper.

pub use abft_checkpoint as checkpoint;
pub use abft_core as core;
pub use abft_dist as dist;
pub use abft_fault as fault;
pub use abft_grid as grid;
pub use abft_hotspot as hotspot;
pub use abft_metrics as metrics;
pub use abft_num as num;
pub use abft_stencil as stencil;

/// The most commonly used items in one import.
pub mod prelude {
    pub use abft_core::{AbftConfig, MultiErrorPolicy, OfflineAbft, OnlineAbft, ProtectorStats};
    pub use abft_fault::{BitFlip, Campaign, FlipHook, Method};
    pub use abft_grid::{Boundary, BoundarySpec, Grid2D, Grid3D};
    pub use abft_metrics::{l2_error, Summary, Timer};
    pub use abft_num::Real;
    pub use abft_stencil::{Exec, NoHook, Stencil2D, Stencil3D, StencilSim, SweepHook};
}
