//! The paper's §5 scenario end-to-end: HotSpot3D on a 64×64×8 tile,
//! 128 iterations, one random bit-flip, all three methods compared on
//! wall time and final l2 error against the error-free reference.
//!
//! Run with: `cargo run --release --example hotspot3d_protected`

use stencil_abft::fault::{random_flips, Campaign, Method};
use stencil_abft::hotspot::{build_sim, Scenario};
use stencil_abft::prelude::*;

fn main() {
    let scenario = Scenario::tile_small();
    let (nx, ny, nz) = scenario.dims;
    println!(
        "HotSpot3D tile {}x{}x{}, {} iterations (paper Table 1)\n",
        nx, ny, nz, scenario.iters
    );

    let params = scenario.params();
    let factory = move || build_sim::<f32>(&params, 42, Exec::Parallel);
    let campaign = Campaign::new(factory, scenario.iters);
    let cfg = AbftConfig::<f32>::paper_defaults()
        .with_epsilon(scenario.epsilon as f32)
        .with_period(scenario.period);

    let flip = random_flips(7, 1, scenario.iters, scenario.dims, 32)[0];
    println!(
        "injected fault: iteration {}, point ({}, {}, {}), bit {}\n",
        flip.iteration, flip.x, flip.y, flip.z, flip.bit
    );

    println!(
        "{:<15} {:>12} {:>14} {:>10} {:>12} {:>10}",
        "method", "time (s)", "l2 vs ref", "detected", "corrections", "rollbacks"
    );
    for method in Method::all() {
        let r = campaign.run_once(method, cfg, Some(flip));
        println!(
            "{:<15} {:>12.4} {:>14.6e} {:>10} {:>12} {:>10}",
            method.label(),
            r.seconds,
            r.l2,
            r.detected(),
            r.stats.corrections,
            r.stats.rollbacks
        );
    }

    println!("\nerror-free baseline:");
    for method in Method::all() {
        let r = campaign.run_once(method, cfg, None);
        println!("{:<15} {:>12.4} {:>14.6e}", method.label(), r.seconds, r.l2);
    }
}
