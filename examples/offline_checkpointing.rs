//! Offline ABFT walkthrough: periodic verification windows, checkpoint
//! commits, a mid-window fault, rollback + recomputation, and the final
//! end-of-run verification (§4 of the paper).
//!
//! Run with: `cargo run --release --example offline_checkpointing`

use stencil_abft::prelude::*;

fn main() {
    let initial = Grid3D::from_fn(48, 48, 4, |x, y, z| {
        70.0 + ((x * 3 + y * 7 + z * 11) % 13) as f32 * 0.5
    });
    let stencil = Stencil3D::seven_point(0.4f32, 0.12, 0.08, 0.1);
    let mut sim = StencilSim::new(initial, stencil, BoundarySpec::clamp());

    // Δ = 8: verify + checkpoint every 8 iterations.
    let cfg = AbftConfig::<f32>::paper_defaults().with_period(8);
    let mut abft = OfflineAbft::new(&sim, cfg);
    println!(
        "offline ABFT, Δ = 8, checkpoint footprint {} KiB\n",
        abft.checkpoint_bytes() / 1024
    );

    // A fault strikes inside the third window, plus one in the final
    // partial window (caught only by finalize()).
    let flips = [
        BitFlip {
            iteration: 19,
            x: 20,
            y: 30,
            z: 2,
            bit: 29,
        },
        BitFlip {
            iteration: 43,
            x: 5,
            y: 7,
            z: 0,
            bit: 30,
        },
    ];

    let total_iters = 45;
    for t in 0..total_iters {
        let outcome = if let Some(f) = flips.iter().find(|f| f.iteration == t) {
            println!(
                "iteration {t:>3}: injecting bit-flip at ({}, {}, {}) bit {}",
                f.x, f.y, f.z, f.bit
            );
            let hook = FlipHook::<f32>::new(*f);
            abft.step(&mut sim, &hook)
        } else {
            abft.step(&mut sim, &NoHook)
        };
        if outcome.verified {
            println!(
                "iteration {t:>3}: verification -> {}{}",
                if outcome.detected {
                    "MISMATCH"
                } else {
                    "clean"
                },
                if outcome.rollbacks > 0 {
                    format!(
                        ", rolled back and recomputed {} sweeps",
                        outcome.recomputed_steps
                    )
                } else {
                    String::new()
                }
            );
        }
    }

    // The second fault sits in the unfinished window: without this call
    // it would escape into the final results.
    let tail = abft.finalize(&mut sim);
    println!(
        "finalize: {}{}",
        if tail.detected { "MISMATCH" } else { "clean" },
        if tail.rollbacks > 0 {
            format!(
                ", rolled back and recomputed {} sweeps",
                tail.recomputed_steps
            )
        } else {
            String::new()
        }
    );

    let stats = abft.stats();
    println!(
        "\ntotals: {} sweeps (+{} recomputed), {} verifications, {} detections, {} rollbacks",
        stats.steps, stats.recomputed_steps, stats.verifications, stats.detections, stats.rollbacks
    );
    assert_eq!(stats.rollbacks, 2);

    // Cross-check against an unprotected error-free run: the recovered
    // trajectory must match exactly.
    let initial = Grid3D::from_fn(48, 48, 4, |x, y, z| {
        70.0 + ((x * 3 + y * 7 + z * 11) % 13) as f32 * 0.5
    });
    let stencil = Stencil3D::seven_point(0.4f32, 0.12, 0.08, 0.1);
    let mut clean = StencilSim::new(initial, stencil, BoundarySpec::clamp());
    for _ in 0..total_iters {
        clean.step();
    }
    let l2 = l2_error(clean.current(), sim.current());
    println!("l2 vs error-free run: {l2:.3e}");
    assert_eq!(l2, 0.0, "rollback recovery must be exact");
    println!("both faults fully erased — final state is bit-exact");
}
