//! 2-D heat diffusion under **every** boundary condition, protected by
//! online ABFT — demonstrating that the checksum interpolation (Theorem 1
//! with the α/β corrections) stays exact on clamp, periodic, zero,
//! constant and reflect boundaries, for a non-symmetric kernel.
//!
//! Run with: `cargo run --release --example heat_diffusion_2d`

use stencil_abft::prelude::*;

fn run_case(name: &str, bounds: BoundarySpec<f64>) {
    // An advection-tinged (asymmetric!) diffusion kernel: the west and
    // east weights differ, so the clamp case exercises the general
    // correction path, not the paper's fast path.
    let stencil = Stencil2D::from_tuples(&[
        (0, 0, 0.58f64),
        (-1, 0, 0.14), // upwind bias
        (1, 0, 0.08),
        (0, -1, 0.1),
        (0, 1, 0.1),
    ])
    .into_3d();

    let initial = Grid3D::from_fn(96, 96, 1, |x, y, _| {
        let dx = x as f64 - 48.0;
        let dy = y as f64 - 48.0;
        20.0 + 80.0 * (-(dx * dx + dy * dy) / 200.0).exp()
    });

    let mut sim = StencilSim::new(initial, stencil, bounds);
    let mut abft = OnlineAbft::new(&sim, AbftConfig::<f64>::paper_defaults());

    // One corruption halfway through.
    let flip = BitFlip {
        iteration: 60,
        x: 30,
        y: 70,
        z: 0,
        bit: 52,
    };
    let hook = FlipHook::<f64>::new(flip);

    for t in 0..120 {
        if t == flip.iteration {
            abft.step(&mut sim, &hook);
        } else {
            abft.step(&mut sim, &NoHook);
        }
    }

    let s = abft.stats();
    let peak = sim
        .current()
        .as_slice()
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    println!(
        "{name:<22} detections {} corrections {} false-positives {}  peak temp {peak:7.3}",
        s.detections,
        s.corrections,
        s.detections.saturating_sub(1),
    );
    assert_eq!(s.detections, 1, "{name}: exactly the injected fault");
    assert_eq!(s.corrections, 1, "{name}: corrected in place");
}

fn main() {
    println!("asymmetric 5-point kernel, 96x96, 120 iterations, one injected flip\n");
    run_case("clamp", BoundarySpec::clamp());
    run_case("periodic", BoundarySpec::periodic());
    run_case("zero (empty)", BoundarySpec::zero());
    run_case(
        "constant(20.0)",
        BoundarySpec::uniform(Boundary::Constant(20.0)),
    );
    run_case("reflect (mirror)", BoundarySpec::uniform(Boundary::Reflect));
    run_case(
        "mixed per-axis",
        BoundarySpec {
            x: Boundary::Reflect,
            y: Boundary::Constant(20.0),
            z: Boundary::Clamp,
        },
    );
    println!("\nall boundary conditions: detected and corrected with zero false positives");
}
