//! Quickstart: protect a 2-D Jacobi heat kernel with online ABFT,
//! inject a bit-flip, and watch it get detected and corrected.
//!
//! Run with: `cargo run --release --example quickstart`

use stencil_abft::prelude::*;

fn main() {
    // A 64×64 2-D domain with a hot square in the middle.
    let initial = Grid3D::from_fn(64, 64, 1, |x, y, _| {
        if (24..40).contains(&x) && (24..40).contains(&y) {
            100.0f32
        } else {
            20.0
        }
    });

    // u' = u + α·(E + W + N + S − 4u), clamped boundaries.
    let stencil = Stencil2D::jacobi_heat(0.2f32).into_3d();
    let mut sim = StencilSim::new(initial, stencil, BoundarySpec::clamp());

    // Attach the online protector (ε = 1e-5, the paper's default for f32).
    let mut abft = OnlineAbft::new(&sim, AbftConfig::<f32>::paper_defaults());

    // Corrupt the sign bit of the value computed for (10, 20) at
    // iteration 50 — a classic silent data corruption.
    let flip = BitFlip {
        iteration: 50,
        x: 10,
        y: 20,
        z: 0,
        bit: 31,
    };
    let hook = FlipHook::<f32>::new(flip);

    for t in 0..100 {
        let outcome = if t == flip.iteration {
            abft.step(&mut sim, &hook)
        } else {
            abft.step(&mut sim, &NoHook)
        };
        if !outcome.is_clean() {
            for c in &outcome.corrections {
                println!(
                    "iteration {:>3}: corrected ({}, {}) from {:.3} back to {:.3}",
                    outcome.iteration, c.x, c.y, c.old, c.new
                );
            }
        }
    }

    let stats = abft.stats();
    println!(
        "done: {} iterations, {} detection(s), {} correction(s)",
        stats.steps, stats.detections, stats.corrections
    );
    assert_eq!(stats.corrections, 1);
    println!(
        "center temperature after diffusion: {:.2}",
        sim.current().at(32, 32, 0)
    );
}
