//! Image-processing pipeline under ABFT protection — the third
//! application domain the paper's introduction motivates ("the Jacobi
//! kernel, the Gauss–Seidel method, and image processing").
//!
//! A synthetic image is repeatedly smoothed with a 3×3 Gaussian kernel on
//! zero ("empty") boundaries — the boundary case where the α/β correction
//! terms of Theorem 1 are all non-trivial — while bit-flips strike the
//! pixel pipeline.
//!
//! Run with: `cargo run --release --example image_pipeline`

use stencil_abft::prelude::*;

fn main() {
    let (w, h) = (160usize, 120usize);
    // Synthetic test card: gradient + bright blobs + scan lines.
    let image = Grid3D::from_fn(w, h, 1, |x, y, _| {
        let gradient = x as f32 / w as f32;
        let blob = (-((x as f32 - 50.0).powi(2) + (y as f32 - 40.0).powi(2)) / 300.0).exp();
        let lines = if y % 16 < 2 { 0.3 } else { 0.0 };
        (0.2 + 0.5 * gradient + 0.8 * blob + lines).min(1.0) * 255.0
    });

    let blur = Stencil2D::gaussian_blur_3x3().into_3d();
    let bounds = BoundarySpec::<f32>::zero(); // "empty boundaries" (§3.3)

    let mut sim = StencilSim::new(image.clone(), blur.clone(), bounds);
    let mut reference = StencilSim::new(image, blur, bounds).with_exec(Exec::Serial);
    let mut abft = OnlineAbft::new(&sim, AbftConfig::<f32>::paper_defaults());

    // Three corruptions at different passes and pixels.
    let flips = [
        BitFlip {
            iteration: 2,
            x: 80,
            y: 60,
            z: 0,
            bit: 30,
        },
        BitFlip {
            iteration: 5,
            x: 10,
            y: 10,
            z: 0,
            bit: 31,
        },
        BitFlip {
            iteration: 8,
            x: 140,
            y: 100,
            z: 0,
            bit: 26,
        },
    ];

    for t in 0..12 {
        let outcome = if let Some(f) = flips.iter().find(|f| f.iteration == t) {
            let hook = FlipHook::<f32>::new(*f);
            abft.step(&mut sim, &hook)
        } else {
            abft.step(&mut sim, &NoHook)
        };
        reference.step();
        for c in &outcome.corrections {
            println!(
                "pass {:>2}: repaired pixel ({:>3}, {:>3})  {:>12.3} -> {:>8.3}",
                outcome.iteration, c.x, c.y, c.old, c.new
            );
        }
    }

    let stats = abft.stats();
    let l2 = l2_error(reference.current(), sim.current());
    println!(
        "\n12 blur passes, {} corruptions injected, {} corrected, final l2 vs clean: {l2:.3e}",
        flips.len(),
        stats.corrections
    );
    assert_eq!(stats.corrections, 3);
    assert!(l2 < 1.0, "image should be visually indistinguishable");

    // Render a coarse ASCII preview of the blurred image.
    println!("\nblurred image preview:");
    let ramp: &[u8] = b" .:-=+*#%@";
    for by in 0..15 {
        let mut line = String::new();
        for bx in 0..40 {
            let x = bx * w / 40;
            let y = by * h / 15;
            let v = sim.current().at(x, y, 0).clamp(0.0, 255.0);
            let idx = (v / 256.0 * ramp.len() as f32) as usize;
            line.push(ramp[idx.min(ramp.len() - 1)] as char);
        }
        println!("{line}");
    }
}
