//! A miniature fault-injection campaign: many random bit-flips against
//! the three methods, summarised the way the paper's Fig. 9 reports —
//! mean / median / max arithmetic error.
//!
//! Run with: `cargo run --release --example fault_campaign -- [reps]`

use stencil_abft::fault::{random_flips, BitFlip, Campaign, Method};
use stencil_abft::hotspot::{build_sim, Scenario};
use stencil_abft::metrics::Summary;
use stencil_abft::prelude::*;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("reps must be a number"))
        .unwrap_or(20);

    let scenario = Scenario::tile_tiny();
    let params = scenario.params();
    let factory = move || build_sim::<f32>(&params, 11, Exec::Serial);
    let campaign = Campaign::new(factory, scenario.iters);
    let cfg = AbftConfig::<f32>::paper_defaults().with_period(scenario.period);

    let flips = random_flips(123, reps, scenario.iters, scenario.dims, 32);
    let plan: Vec<Option<BitFlip>> = flips.into_iter().map(Some).collect();

    println!(
        "{} random bit-flips on HotSpot3D {} ({} iterations)\n",
        reps, scenario.name, scenario.iters
    );
    println!(
        "{:<15} {:>12} {:>12} {:>12} {:>10}",
        "method", "mean l2", "median l2", "max l2", "detected"
    );
    for method in Method::all() {
        let records = campaign.run_many(method, cfg, &plan);
        let l2s: Vec<f64> = records.iter().map(|r| r.l2).collect();
        let s = Summary::from_sample(&l2s);
        let detected = records.iter().filter(|r| r.detected()).count();
        println!(
            "{:<15} {:>12.3e} {:>12.3e} {:>12.3e} {:>7}/{}",
            method.label(),
            s.mean,
            s.median,
            s.max,
            detected,
            reps
        );
    }
    println!(
        "\nexpected shape (paper Fig. 9): No-ABFT max explodes for exponent/sign flips;\n\
         Online keeps the median small; Offline erases every detected error."
    );
}
