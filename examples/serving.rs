//! Serving a stream of protected stencil jobs from one rank pool.
//!
//! `run_distributed` spawns ranks, builds a channel topology, runs one
//! simulation and tears everything down — the right shape for a single
//! experiment, the wrong one for a deployment where small jobs arrive
//! back to back. [`DistService`] keeps the pool alive instead: workers
//! park between jobs, channel topologies are cached by
//! `(domain shape, rank grid, halo, boundary spec)` and reused, and
//! every job still gets fresh rank state — its own simulators, its own
//! ABFT protectors, its own fault plan.
//!
//! Six heterogeneous jobs go through one 4-worker pool below: mixed
//! domain shapes, kernels (7-point star, 27-point box, wide 13-point
//! star), clamp and periodic boundaries, snapshot and pipelined halo
//! modes — and job 4 carries an injected bit flip that its per-rank
//! online ABFT must detect and correct *inside that job* while the
//! neighbours stay silent.
//!
//! Run with: `cargo run --release --example serving`

use stencil_abft::dist::{DistConfig, DistService, HaloMode, JobSpec};
use stencil_abft::prelude::*;

fn wavy(nx: usize, ny: usize, nz: usize, seed: usize) -> Grid3D<f64> {
    Grid3D::from_fn(nx, ny, nz, |x, y, z| {
        80.0 + ((x * 3 + y * 7 + z * 5 + seed * 11) % 13) as f64 * 0.5
    })
}

fn y_periodic() -> BoundarySpec<f64> {
    BoundarySpec {
        x: Boundary::Clamp,
        y: Boundary::Periodic,
        z: Boundary::Clamp,
    }
}

fn main() {
    let service = DistService::<f64>::new(4).expect("non-empty pool");
    println!(
        "serving on a {}-worker pool: 6 mixed jobs, one with an injected flip\n",
        service.pool_size()
    );

    let jobs: Vec<(&str, JobSpec<f64>)> = vec![
        (
            "7pt star, clamp, 4 slabs",
            JobSpec::new(
                wavy(48, 64, 4, 0),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
                BoundarySpec::clamp(),
                DistConfig::new(4, 32).with_abft(AbftConfig::<f64>::paper_defaults()),
            ),
        ),
        (
            "27pt box, periodic y, 2x2 grid",
            JobSpec::new(
                wavy(32, 32, 6, 1),
                Stencil3D::diffusion_27pt(0.15f64),
                y_periodic(),
                DistConfig::new(4, 24)
                    .with_grid(2, 2)
                    .with_abft(AbftConfig::<f64>::paper_defaults()),
            ),
        ),
        (
            "13pt wide star, halo 2, 2 slabs",
            JobSpec::new(
                wavy(40, 48, 6, 2),
                Stencil3D::diffusion_13pt_4th_order(0.02f64),
                BoundarySpec::clamp(),
                DistConfig::new(2, 24)
                    .with_halo(2)
                    .with_abft(AbftConfig::<f64>::paper_defaults()),
            ),
        ),
        (
            "7pt star with mid-job flip",
            JobSpec::new(
                wavy(48, 64, 4, 3),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
                BoundarySpec::clamp(),
                DistConfig::new(4, 32)
                    .with_abft(AbftConfig::<f64>::paper_defaults())
                    .with_flip(
                        2,
                        BitFlip {
                            iteration: 13,
                            x: 24,
                            y: 7,
                            z: 2,
                            bit: 52,
                        },
                    ),
            ),
        ),
        (
            "7pt star, snapshot halo mode",
            JobSpec::new(
                wavy(48, 64, 4, 4),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
                BoundarySpec::clamp(),
                DistConfig::new(4, 32)
                    .with_mode(HaloMode::Snapshot)
                    .with_abft(AbftConfig::<f64>::paper_defaults()),
            ),
        ),
        (
            "7pt star, clamp, 4 slabs (repeat shape)",
            JobSpec::new(
                wavy(48, 64, 4, 5),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
                BoundarySpec::clamp(),
                DistConfig::new(4, 32).with_abft(AbftConfig::<f64>::paper_defaults()),
            ),
        ),
    ];

    // Submit everything up front — admission validates each job
    // synchronously — then claim the reports in order.
    let ids: Vec<_> = jobs
        .iter()
        .map(|(name, spec)| {
            let id = service.submit(spec.clone()).expect("valid job");
            println!("submitted {id}: {name}");
            id
        })
        .collect();
    println!();

    for ((name, spec), id) in jobs.iter().zip(ids) {
        let report = service.await_job(id).expect("job completes");
        let total = report.total_stats();
        println!("=== {id}: {name} ===");
        println!("{report}");
        let expect = usize::from(!spec.cfg.flips.is_empty());
        assert_eq!(
            total.detections, expect,
            "{name}: fault handling leaked across jobs"
        );
        assert_eq!(total.corrections, expect, "{name}: flip was not repaired");
        println!();
    }

    let stats = service.stats();
    println!(
        "served {} jobs: {} topology builds, {} cache reuses",
        stats.jobs_completed, stats.topology_misses, stats.topology_hits
    );
    // Jobs 1, 4, 5 and 6 share one topology (same shape, ranks, halo,
    // bounds); jobs 2 and 3 each bring their own.
    assert_eq!(stats.jobs_completed, 6);
    assert_eq!(stats.topology_misses, 3);
    assert_eq!(stats.topology_hits, 3);
    service.shutdown();
    println!("pool drained, workers joined. all assertions passed.");
}
