//! Serving a stream of protected stencil jobs from one rank pool.
//!
//! `run_distributed` spawns ranks, builds a channel topology, runs one
//! simulation and tears everything down — the right shape for a single
//! experiment, the wrong one for a deployment where small jobs arrive
//! back to back. [`DistService`] keeps the pool alive instead: workers
//! park between jobs, the scheduler packs jobs onto free worker slots
//! side by side, channel topologies are cached by `(domain shape, rank
//! grid, halo, boundary spec)` and reused, and every job still gets
//! fresh rank state — its own simulators, its own ABFT protectors, its
//! own fault plan — so co-scheduling never changes a single bit of any
//! result.
//!
//! Six heterogeneous jobs go through one 4-worker pool below: mixed
//! domain shapes, kernels (7-point star, 27-point box, wide 13-point
//! star), clamp and periodic boundaries, snapshot and pipelined halo
//! modes — and job 4 carries an injected bit flip that its per-rank
//! online ABFT must detect and correct *inside that job* while the
//! neighbours stay silent. Each `submit` returns a [`JobHandle`]; the
//! example claims one report by polling (`try_result`), streams another
//! from the scheduler thread (`on_complete`), and blocks on the rest
//! (`wait`).
//!
//! Run with: `cargo run --release --example serving`

use std::sync::mpsc;
use std::time::Duration;

use stencil_abft::dist::{DistService, HaloMode, JobHandle, JobSpec};
use stencil_abft::prelude::*;

fn wavy(nx: usize, ny: usize, nz: usize, seed: usize) -> Grid3D<f64> {
    Grid3D::from_fn(nx, ny, nz, |x, y, z| {
        80.0 + ((x * 3 + y * 7 + z * 5 + seed * 11) % 13) as f64 * 0.5
    })
}

fn y_periodic() -> BoundarySpec<f64> {
    BoundarySpec {
        x: Boundary::Clamp,
        y: Boundary::Periodic,
        z: Boundary::Clamp,
    }
}

fn main() {
    let service = DistService::<f64>::new(4).expect("non-empty pool");
    println!(
        "serving on a {}-worker pool: 6 mixed jobs, one with an injected flip\n",
        service.pool_size()
    );

    let jobs: Vec<(&str, JobSpec<f64>)> = vec![
        (
            "7pt star, clamp, 4 slabs",
            JobSpec::over(
                wavy(48, 64, 4, 0),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
            )
            .with_ranks(4)
            .with_iters(32)
            .with_abft(AbftConfig::<f64>::paper_defaults()),
        ),
        (
            "27pt box, periodic y, 2x2 grid",
            JobSpec::over(wavy(32, 32, 6, 1), Stencil3D::diffusion_27pt(0.15f64))
                .with_bounds(y_periodic())
                .with_ranks(4)
                .with_iters(24)
                .with_grid(2, 2)
                .with_abft(AbftConfig::<f64>::paper_defaults()),
        ),
        (
            "13pt wide star, halo 2, 2 slabs",
            JobSpec::over(
                wavy(40, 48, 6, 2),
                Stencil3D::diffusion_13pt_4th_order(0.02f64),
            )
            .with_ranks(2)
            .with_iters(24)
            .with_halo(2)
            .with_abft(AbftConfig::<f64>::paper_defaults()),
        ),
        (
            "7pt star with mid-job flip",
            JobSpec::over(
                wavy(48, 64, 4, 3),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
            )
            .with_ranks(4)
            .with_iters(32)
            .with_abft(AbftConfig::<f64>::paper_defaults())
            .with_flip(
                2,
                BitFlip {
                    iteration: 13,
                    x: 24,
                    y: 7,
                    z: 2,
                    bit: 52,
                },
            ),
        ),
        (
            "7pt star, snapshot halo mode",
            JobSpec::over(
                wavy(48, 64, 4, 4),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
            )
            .with_ranks(4)
            .with_iters(32)
            .with_mode(HaloMode::Snapshot)
            .with_abft(AbftConfig::<f64>::paper_defaults()),
        ),
        (
            "7pt star, clamp, 4 slabs (repeat shape)",
            JobSpec::over(
                wavy(48, 64, 4, 5),
                Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1),
            )
            .with_ranks(4)
            .with_iters(32)
            .with_abft(AbftConfig::<f64>::paper_defaults()),
        ),
    ];

    // Submit everything up front — admission validates each job
    // synchronously and hands back a handle; the scheduler starts jobs
    // as worker slots free up (the 2-rank job can share the pool with
    // nothing else here, but the 0-slot snapshot job overlaps freely).
    let mut handles: Vec<JobHandle<f64>> = Vec::new();
    for (name, spec) in &jobs {
        let handle = service.submit(spec.clone()).expect("valid job");
        println!("submitted {}: {name}", handle.id());
        handles.push(handle);
    }
    println!();

    // Three ways to claim a report. (1) Stream: the flip job's report is
    // pushed from the scheduler thread the moment it completes — the
    // callback must stay short, so it just forwards through a channel.
    let (flip_tx, flip_rx) = mpsc::channel();
    let flip_handle = handles.remove(3);
    let flip_id = flip_handle.id();
    flip_handle.on_complete(move |result| {
        let _ = flip_tx.send(result);
    });

    // (2) Poll: claim the first report without ever blocking.
    let mut first = handles.remove(0);
    let first_report = loop {
        if let Some(result) = first.try_result() {
            break result.clone().expect("job completes");
        }
        std::thread::sleep(Duration::from_millis(1));
    };

    // (3) Block: `wait` consumes the handle and yields the report.
    let mut reports = vec![("7pt star, clamp, 4 slabs", 0usize, first_report)];
    for ((name, spec), handle) in jobs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 0 && *i != 3)
        .map(|(_, j)| j)
        .zip(handles)
    {
        let expect = usize::from(!spec.cfg.flips.is_empty());
        reports.push((name, expect, handle.wait().expect("job completes")));
    }
    let flip_report = flip_rx
        .recv()
        .expect("callback fires")
        .expect("flip job completes");
    println!("streamed {flip_id} from the scheduler thread via on_complete\n");
    reports.push(("7pt star with mid-job flip", 1, flip_report));

    for (name, expect, report) in &reports {
        println!("=== {name} ===");
        println!("{report}");
        println!(
            "    latency split: {:.6} s queued + {:.6} s executing",
            report.queue_wait_s, report.exec_s
        );
        let total = report.total_stats();
        assert_eq!(
            total.detections, *expect,
            "{name}: fault handling leaked across jobs"
        );
        assert_eq!(total.corrections, *expect, "{name}: flip was not repaired");
        println!();
    }

    let stats = service.stats();
    println!(
        "served {} jobs ({} running at peak): {} topology builds, {} cache reuses",
        stats.jobs_completed, stats.peak_concurrent, stats.topology_misses, stats.topology_hits
    );
    // Jobs 1, 4, 5 and 6 share one topology (same shape, ranks, halo,
    // bounds); jobs 2 and 3 each bring their own. The counts are
    // independent of how the scheduler interleaved the jobs.
    assert_eq!(stats.jobs_completed, 6);
    assert_eq!(stats.topology_misses, 3);
    assert_eq!(stats.topology_hits, 3);
    service.shutdown();
    println!("pool drained, workers joined. all assertions passed.");
}
