//! Distributed-memory run: the global domain is decomposed over
//! persistent ranks (threads standing in for MPI processes) that pipeline
//! their time-`t` halo cells over bounded channels — posting boundaries,
//! sweeping the ghost-free interior while halos are in flight, then
//! finishing the edge frame — and each rank protects its own chunk with
//! online ABFT: the "intrinsically parallel" deployment the paper argues
//! for in §3.2.
//!
//! Four decompositions run back to back on the same domain:
//!
//! 1. the classic `1×ranks` **y-slab** split with a mid-run bit flip,
//! 2. a **2×2 rank grid** (column strips + corner patches in the halo)
//!    with the flip aimed at a tile *corner* — the cell owed to three
//!    neighbours at once, the hardest containment site —
//! 3. the same 2×2 grid under the library's **9-point convection
//!    kernel**, whose diagonal taps consume the corner patches every
//!    sweep, again with a corner flip; the report's per-channel traffic
//!    summary shows the row/column/corner split the exchange carried —
//!    and
//! 4. a **2×2×2 brick grid** under the library's **27-point diffusion
//!    kernel**, whose z-diagonal taps consume the z-face, z-edge and
//!    z-corner channels every sweep, with the flip at a brick's
//!    xyz-corner — the cell owed to seven neighbours at once.
//!
//! Run with: `cargo run --release --example distributed_halo -- [ranks]`

use stencil_abft::dist::{run_distributed, DistConfig, DistReport};
use stencil_abft::prelude::*;

fn report_ranks(report: &DistReport<f64>) {
    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "rank", "brick", "origin", "detections", "corrections", "halo-wait"
    );
    for r in &report.ranks {
        println!(
            "{:<6} {:>12} {:>10} {:>12} {:>12} {:>11.1}%",
            r.rank,
            format!("{}x{}x{}", r.x_len, r.y_len, r.z_len),
            format!("({},{},{})", r.x0, r.y0, r.z0),
            r.stats.detections,
            r.stats.corrections,
            100.0 * r.timing.halo_wait_fraction()
        );
    }
}

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("ranks must be a number"))
        .unwrap_or(4);

    // Global domain and kernel.
    let (nx, ny, nz) = (48usize, 64usize, 4usize);
    let initial = Grid3D::from_fn(nx, ny, nz, |x, y, z| {
        80.0 + ((x * 3 + y * 7 + z * 5) % 13) as f64 * 0.5
    });
    let stencil = Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1);
    let bounds = BoundarySpec::clamp();
    let iters = 40;

    // Serial reference for equivalence checking.
    let mut serial =
        StencilSim::new(initial.clone(), stencil.clone(), bounds).with_exec(Exec::Serial);
    for _ in 0..iters {
        serial.step();
    }

    // --- 1. y-slab decomposition, fault in rank 1's chunk. -------------
    let flip = BitFlip {
        iteration: 17,
        x: 20,
        y: 3,
        z: 2,
        bit: 52,
    };
    let cfg = DistConfig::new(ranks, iters)
        .with_abft(AbftConfig::<f64>::paper_defaults())
        .with_flip(1.min(ranks - 1), flip);
    let report =
        run_distributed(&initial, &stencil, &bounds, None, &cfg).expect("valid dist config");

    println!(
        "== {ranks} y-slab ranks x {iters} iterations, one bit-flip in rank {} ==\n",
        1.min(ranks - 1)
    );
    report_ranks(&report);

    let l2 = l2_error(serial.current(), &report.global);
    let total = report.total_stats();
    println!("\nglobal l2 vs serial run: {l2:.3e}");
    println!(
        "total: {} detections, {} corrections across ranks",
        total.detections, total.corrections
    );
    assert_eq!(total.corrections, 1);
    assert!(l2 < 1e-8, "corrected distributed run must match serial");

    // --- 2. 2×2 rank grid, fault at a tile corner. ---------------------
    // Rank 3's tile origin is the domain centre; its local (0, 0) corner
    // cell is owed to ranks 0 (diagonal), 1 (row strip) and 2 (column
    // strip) at every halo exchange.
    let corner_flip = BitFlip {
        iteration: 23,
        x: 0,
        y: 0,
        z: 1,
        bit: 52,
    };
    let cfg = DistConfig::new(4, iters)
        .with_grid(2, 2)
        .with_abft(AbftConfig::<f64>::paper_defaults())
        .with_flip(3, corner_flip);
    let report =
        run_distributed(&initial, &stencil, &bounds, None, &cfg).expect("valid dist config");

    println!("\n== 2x2 rank grid x {iters} iterations, bit-flip at rank 3's tile corner ==\n");
    report_ranks(&report);

    let l2 = l2_error(serial.current(), &report.global);
    let total = report.total_stats();
    println!("\nglobal l2 vs serial run: {l2:.3e}");
    println!("{report}");
    assert_eq!(report.grid, (2, 2, 1));
    assert_eq!(total.corrections, 1);
    assert_eq!(report.ranks[3].stats.corrections, 1);
    assert!(l2 < 1e-8, "corrected 2-D run must match serial");

    // --- 3. 2×2 rank grid, 9-point kernel, fault at a tile corner. -----
    // The convection kernel's diagonal taps make the corner patches
    // load-bearing: the corrupted corner cell would be consumed through
    // the row, column *and* corner channels at the next exchange, so the
    // per-rank correction has to land before all three posts.
    let nine_point = Stencil2D::convection_9pt(0.18f64, 0.08, -0.05).into_3d();
    let mut serial9 =
        StencilSim::new(initial.clone(), nine_point.clone(), bounds).with_exec(Exec::Serial);
    for _ in 0..iters {
        serial9.step();
    }
    // Rank 0's far corner abuts the domain centre where all four tiles
    // meet — its cell is owed to every other rank at once.
    let centre_corner_flip = BitFlip {
        iteration: 23,
        x: nx / 2 - 1,
        y: ny / 2 - 1,
        z: 1,
        bit: 52,
    };
    let cfg = DistConfig::new(4, iters)
        .with_grid(2, 2)
        .with_abft(AbftConfig::<f64>::paper_defaults())
        .with_flip(0, centre_corner_flip);
    let report =
        run_distributed(&initial, &nine_point, &bounds, None, &cfg).expect("valid dist config");

    println!("\n== 2x2 rank grid x {iters} iterations, 9-point kernel, corner bit-flip ==\n");
    report_ranks(&report);

    let l2 = l2_error(serial9.current(), &report.global);
    let total = report.total_stats();
    println!("\nglobal l2 vs serial run: {l2:.3e}");
    println!("{report}");
    let traffic = report.total_traffic();
    assert!(
        traffic.corner_cells > 0,
        "a 2-D grid must exchange corner patches"
    );
    assert_eq!(total.corrections, 1);
    assert_eq!(report.ranks[0].stats.corrections, 1);
    assert!(l2 < 1e-8, "corrected 9-point run must match serial");

    // --- 4. 2×2×2 brick grid, 27-point kernel, fault at a brick corner. -
    // The z axis is decomposed too: rank 7's brick origin is the domain
    // centre, so its local (0, 0, 0) cell sits at the meeting point of
    // all eight bricks — owed to every other rank through x/y/z faces,
    // edges *and* the xyz-corner channel — and the 27-point kernel's
    // z-diagonal taps consume all of them the very next sweep.
    let twenty_seven = Stencil3D::diffusion_27pt(0.21f64);
    let mut serial27 =
        StencilSim::new(initial.clone(), twenty_seven.clone(), bounds).with_exec(Exec::Serial);
    for _ in 0..iters {
        serial27.step();
    }
    let brick_corner_flip = BitFlip {
        iteration: 23,
        x: 0,
        y: 0,
        z: 0,
        bit: 52,
    };
    let cfg = DistConfig::new(8, iters)
        .with_grid3(2, 2, 2)
        .with_abft(AbftConfig::<f64>::paper_defaults())
        .with_flip(7, brick_corner_flip);
    let report =
        run_distributed(&initial, &twenty_seven, &bounds, None, &cfg).expect("valid dist config");

    println!("\n== 2x2x2 rank bricks x {iters} iterations, 27-point kernel, corner bit-flip ==\n");
    report_ranks(&report);

    let l2 = l2_error(serial27.current(), &report.global);
    let total = report.total_stats();
    println!("\nglobal l2 vs serial run: {l2:.3e}");
    println!("{report}");
    let traffic = report.total_traffic();
    assert_eq!(report.grid, (2, 2, 2));
    assert!(
        traffic.zface_cells > 0 && traffic.zcorner_cells > 0,
        "a 3-D brick grid must exchange z-face and z-corner patches"
    );
    assert_eq!(total.corrections, 1);
    assert_eq!(report.ranks[7].stats.corrections, 1);
    assert!(l2 < 1e-8, "corrected 27-point brick run must match serial");
    println!("\ndistributed + per-rank ABFT matches the serial reference in all four runs");
}
