//! Distributed-memory run: the global domain is decomposed over
//! persistent ranks (threads standing in for MPI processes) that pipeline
//! their time-`t` halo rows over bounded channels — posting boundaries,
//! sweeping the interior while halos are in flight, then finishing edge
//! rows — and each rank protects its own chunk with online ABFT: the
//! "intrinsically parallel" deployment the paper argues for in §3.2.
//!
//! Run with: `cargo run --release --example distributed_halo -- [ranks]`

use stencil_abft::dist::{run_distributed, DistConfig};
use stencil_abft::prelude::*;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("ranks must be a number"))
        .unwrap_or(4);

    // Global domain and kernel.
    let (nx, ny, nz) = (48usize, 64usize, 4usize);
    let initial = Grid3D::from_fn(nx, ny, nz, |x, y, z| {
        80.0 + ((x * 3 + y * 7 + z * 5) % 13) as f64 * 0.5
    });
    let stencil = Stencil3D::seven_point(0.4f64, 0.12, 0.08, 0.1);
    let bounds = BoundarySpec::clamp();
    let iters = 40;

    // Serial reference for equivalence checking.
    let mut serial =
        StencilSim::new(initial.clone(), stencil.clone(), bounds).with_exec(Exec::Serial);
    for _ in 0..iters {
        serial.step();
    }

    // Fault in rank 1's chunk, local coordinates.
    let flip = BitFlip {
        iteration: 17,
        x: 20,
        y: 3,
        z: 2,
        bit: 52,
    };
    let cfg = DistConfig::new(ranks, iters)
        .with_abft(AbftConfig::<f64>::paper_defaults())
        .with_flip(1.min(ranks - 1), flip);

    let report =
        run_distributed(&initial, &stencil, &bounds, None, &cfg).expect("valid dist config");

    println!(
        "{} ranks x {} iterations, one bit-flip in rank {}\n",
        ranks,
        iters,
        1.min(ranks - 1)
    );
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12}",
        "rank", "lines", "detections", "corrections", "halo-wait"
    );
    for r in &report.ranks {
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>11.1}%",
            r.rank,
            r.y_len,
            r.stats.detections,
            r.stats.corrections,
            100.0 * r.timing.halo_wait_fraction()
        );
    }

    let l2 = l2_error(serial.current(), &report.global);
    let total = report.total_stats();
    println!("\nglobal l2 vs serial run: {l2:.3e}");
    println!(
        "total: {} detections, {} corrections across ranks",
        total.detections, total.corrections
    );
    assert_eq!(total.corrections, 1);
    assert!(l2 < 1e-8, "corrected distributed run must match serial");
    println!("distributed + per-rank ABFT matches the serial reference");
}
