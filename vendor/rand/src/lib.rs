//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the surface it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and uniform range sampling through
//! [`RngExt::random_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a solid,
//! well-studied deterministic PRNG. It is **not** the crates.io `StdRng`
//! stream (ChaCha12): all workspace call sites only rely on seeds being
//! deterministic and well-mixed, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface: a source of uniform `u64`s.
pub trait Rng {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform boolean.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension trait carrying the range-sampling API (`rand` ≥ 0.9 naming).
pub trait RngExt: Rng {
    /// Sample uniformly from a range (`a..b` or `a..=b`, integers or
    /// floats).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng> RngExt for R {}

/// A type that can be sampled uniformly to yield a `T`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the exclusive end.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                // lo + unit*(hi-lo) can round past hi; clamp keeps the
                // inclusive contract exact.
                (lo + unit * (hi - lo)).min(hi)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Unbiased uniform sample from `0..span` (`span > 0`) via Lemire-style
/// rejection.
fn uniform_u64_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(0.05..0.15);
            assert!((0.05..0.15).contains(&v));
            let w: f32 = rng.random_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(rng.random_range(7u32..=7), 7);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(5usize..5);
    }
}
