//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it actually uses: a [`Mutex`]
//! whose `lock()` returns a guard directly (no `Result`). Backed by
//! `std::sync::Mutex`; a poisoned lock is recovered into, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, never
    /// returns an error: a poisoned lock is simply recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
