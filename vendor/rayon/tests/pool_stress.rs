//! Stress tests for the persistent work-stealing pool. This file runs as
//! its own process, so `build_global` here is guaranteed to precede pool
//! creation and the configured thread count is exactly what the pool gets.

use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::thread;
use std::time::Duration;

const CONFIGURED: usize = 3;

/// Install the thread count before ANY test in this process touches the
/// pool (tests share one process and run concurrently).
fn init_pool() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(CONFIGURED)
            .build_global()
            .unwrap();
    });
}

fn worker_thread_names() -> HashSet<String> {
    let names = Mutex::new(HashSet::new());
    (0..256usize)
        .collect::<Vec<_>>()
        .into_par_iter()
        .for_each(|_| {
            if let Some(name) = thread::current().name() {
                if name.starts_with("abft-rayon-") {
                    names.lock().unwrap().insert(name.to_string());
                }
            }
            // Encourage the scheduler to spread items over all workers.
            thread::sleep(Duration::from_micros(200));
        });
    names.into_inner().unwrap()
}

#[test]
fn pool_honours_configured_thread_count_and_persists() {
    init_pool();
    assert_eq!(rayon::current_num_threads(), CONFIGURED);

    // Pool workers participated (items also run on the submitting
    // thread, so worker participation proves the pool is live)…
    let first = worker_thread_names();
    let second = worker_thread_names();
    assert!(
        !first.is_empty() && !second.is_empty(),
        "no pool workers ran any items: {first:?} / {second:?}"
    );
    // …and across both calls the distinct worker threads stay within the
    // configured count — the same persistent threads are reused, never
    // respawned per call.
    let union: HashSet<&String> = first.union(&second).collect();
    assert!(
        union.len() <= CONFIGURED,
        "saw {} distinct workers across calls, configured {CONFIGURED}: {union:?}",
        union.len()
    );
}

#[test]
fn concurrent_for_each_from_many_threads_completes() {
    init_pool();
    // 8 OS threads each drive 50 parallel iterations through the shared
    // pool at once; every item must run exactly once, with no deadlock.
    let total = AtomicUsize::new(0);
    thread::scope(|s| {
        for t in 0..8usize {
            let total = &total;
            s.spawn(move || {
                for round in 0..50usize {
                    let hits = AtomicUsize::new(0);
                    (0..40usize)
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .for_each(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    assert_eq!(hits.load(Ordering::Relaxed), 40, "thread {t} round {round}");
                    total.fetch_add(40, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 8 * 50 * 40);
}

#[test]
fn nested_for_each_inside_workers_completes() {
    init_pool();
    // Outer items run on pool workers; each spawns an inner parallel loop,
    // which must make progress even though all workers may be busy with
    // outer items (the submitting thread claims its own work).
    let hits = AtomicUsize::new(0);
    (0..16usize)
        .collect::<Vec<_>>()
        .into_par_iter()
        .for_each(|_| {
            (0..32usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
        });
    assert_eq!(hits.load(Ordering::Relaxed), 16 * 32);

    // Two levels deep, mixed with sequential work.
    let deep = AtomicUsize::new(0);
    (0..4usize)
        .collect::<Vec<_>>()
        .into_par_iter()
        .for_each(|_| {
            (0..4usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|_| {
                    (0..8usize)
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .for_each(|_| {
                            deep.fetch_add(1, Ordering::Relaxed);
                        });
                });
        });
    assert_eq!(deep.load(Ordering::Relaxed), 4 * 4 * 8);
}
