//! Vendored, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of rayon it uses: `Vec::into_par_iter().for_each(..)`
//! and the [`ThreadPoolBuilder`] global-thread-count knob. Parallelism is
//! genuine — work is split over `std::thread::scope` threads — but there is
//! no work-stealing pool: each `for_each` call spawns its worker threads.
//! For this workspace's usage (one task per `z`-layer of a stencil sweep,
//! dozens of items each doing O(nx·ny) work) the spawn cost is noise.

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads `for_each` fans out to.
fn effective_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the global pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error building the global pool (this shim never fails; the type exists
/// for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the machine's available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configured thread count globally. Unlike real rayon this
    /// may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Parallel-iterator entry point: types convertible into a parallel
/// iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

/// The minimal parallel-iterator interface the workspace uses.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Consume the iterator, applying `f` to every item across threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send;
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        let threads = effective_threads().min(self.items.len().max(1));
        if threads <= 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        // Deal items round-robin into one bucket per worker; scoped threads
        // borrow `f` so no 'static bound is needed.
        let mut buckets: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, item) in self.items.into_iter().enumerate() {
            buckets[i % threads].push(item);
        }
        let f = &f;
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for item in bucket {
                        f(item);
                    }
                });
            }
        });
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        (0..100usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|i| {
                hits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn mutable_borrows_via_items() {
        let mut data = vec![0u64; 64];
        let tasks: Vec<(usize, &mut u64)> = data.iter_mut().enumerate().collect();
        tasks.into_par_iter().for_each(|(i, slot)| {
            *slot = (i * i) as u64;
        });
        assert_eq!(data[9], 81);
        assert_eq!(data[63], 3969);
    }

    #[test]
    fn empty_and_single() {
        Vec::<usize>::new().into_par_iter().for_each(|_| panic!());
        let hit = AtomicUsize::new(0);
        vec![7usize].into_par_iter().for_each(|v| {
            hit.store(v, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn build_global_is_idempotent() {
        assert!(crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .is_ok());
        assert!(crate::ThreadPoolBuilder::new()
            .num_threads(8)
            .build_global()
            .is_ok());
    }
}
