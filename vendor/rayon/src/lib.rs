//! Vendored, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of rayon it uses: `Vec::into_par_iter().for_each(..)`,
//! the [`ThreadPoolBuilder`] global-thread-count knob and
//! [`current_num_threads`]. Parallelism runs on a **persistent
//! work-stealing pool**: the first parallel call lazily spawns the worker
//! threads (honouring [`ThreadPoolBuilder::num_threads`]) and every later
//! `for_each` reuses them, so sweep dispatch no longer pays per-call thread
//! creation. Each worker owns a deque — it pops its own jobs LIFO and
//! steals FIFO from siblings or from the external injector queue — and the
//! submitting thread participates in executing its own items, so nested
//! `for_each` calls from inside a worker make progress without blocking the
//! pool (no deadlock by construction: every claimed item is executed by a
//! running thread, never parked).

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the pool is created with.
fn effective_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the global pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error building the global pool (this shim never fails; the type exists
/// for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the machine's available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configured thread count globally. Unlike real rayon this
    /// may be called repeatedly without error; the count is honoured by the
    /// pool when it is (lazily) created, so only calls made before the
    /// first parallel operation can change the worker count.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Number of worker threads in the global pool (creates it on first call),
/// mirroring `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    pool::global().threads.max(1)
}

mod pool {
    use super::*;

    /// A unit of pool work: claims items from its parent task until none
    /// remain. Implementations are lifetime-erased by `for_each`, so a
    /// stale job popped after its task completed must only touch the
    /// task's own (Arc-kept-alive) header, never the borrowed closure.
    pub(crate) trait Task: Send + Sync {
        fn run(&self);
    }

    pub(crate) type Job = Arc<dyn Task>;

    struct Shared {
        /// One deque per worker: owner pushes/pops the back, thieves (and
        /// the injector drain) steal from the front.
        queues: Vec<Mutex<VecDeque<Job>>>,
        /// Submissions from threads outside the pool.
        injector: Mutex<VecDeque<Job>>,
        /// Parking lot for idle workers.
        idle: Mutex<()>,
        wake: Condvar,
    }

    pub(crate) struct Pool {
        shared: Arc<Shared>,
        pub(crate) threads: usize,
    }

    thread_local! {
        /// Index of this thread inside the pool, if it is a worker.
        static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool::new(effective_threads()))
    }

    impl Pool {
        fn new(threads: usize) -> Self {
            let shared = Arc::new(Shared {
                queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
                injector: Mutex::new(VecDeque::new()),
                idle: Mutex::new(()),
                wake: Condvar::new(),
            });
            for i in 0..threads {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("abft-rayon-{i}"))
                    .spawn(move || worker_loop(&sh, i))
                    .expect("spawn pool worker");
            }
            Self { shared, threads }
        }

        /// Enqueue `copies` handles to one job. From a worker thread the
        /// handles land on its own deque (stealable by siblings); from
        /// outside they go through the injector.
        pub(crate) fn submit(&self, job: &Job, copies: usize) {
            let me = WORKER_INDEX.with(Cell::get);
            {
                let mut q = match me {
                    Some(i) => self.shared.queues[i].lock().unwrap(),
                    None => self.shared.injector.lock().unwrap(),
                };
                for _ in 0..copies {
                    q.push_back(Arc::clone(job));
                }
            }
            // Pair the notification with the idle lock so a worker that
            // just saw empty queues cannot park past this wake-up.
            let _g = self.shared.idle.lock().unwrap();
            self.shared.wake.notify_all();
        }

        /// Grab one pending job, preferring our own deque, then the
        /// injector, then stealing from siblings.
        fn find_job(&self) -> Option<Job> {
            let me = WORKER_INDEX.with(Cell::get);
            if let Some(i) = me {
                if let Some(job) = self.shared.queues[i].lock().unwrap().pop_back() {
                    return Some(job);
                }
            }
            if let Some(job) = self.shared.injector.lock().unwrap().pop_front() {
                return Some(job);
            }
            let start = me.unwrap_or(0);
            let n = self.shared.queues.len();
            for off in 0..n {
                let victim = (start + off) % n;
                if Some(victim) == me {
                    continue;
                }
                if let Some(job) = self.shared.queues[victim].lock().unwrap().pop_front() {
                    return Some(job);
                }
            }
            None
        }
    }

    fn worker_loop(sh: &Arc<Shared>, index: usize) {
        WORKER_INDEX.with(|w| w.set(Some(index)));
        let pool = Pool {
            shared: Arc::clone(sh),
            threads: sh.queues.len(),
        };
        loop {
            if let Some(job) = pool.find_job() {
                job.run();
                continue;
            }
            let guard = sh.idle.lock().unwrap();
            // Re-check under the idle lock (submit notifies under it), with
            // a timeout as a belt-and-braces backstop.
            let empty = sh.injector.lock().unwrap().is_empty()
                && sh.queues.iter().all(|q| q.lock().unwrap().is_empty());
            if empty {
                // The submit path notifies under this lock, so the wait
                // cannot miss a wake-up; the long timeout is only a
                // belt-and-braces backstop, not a polling interval.
                let _ = sh.wake.wait_timeout(guard, Duration::from_secs(1));
            }
        }
    }

    /// Shared state of one `for_each` call. Items are claimed via an
    /// atomic cursor, so each runs exactly once no matter how many job
    /// handles were enqueued; `done` counts completed items so the caller
    /// knows when every closure invocation has returned.
    pub(crate) struct ForEachTask<T, F> {
        items: Vec<UnsafeCell<Option<T>>>,
        cursor: AtomicUsize,
        done: AtomicUsize,
        /// Borrowed closure on the caller's stack; only dereferenced while
        /// the caller is still blocked in `for_each` (i.e. before `done`
        /// reaches `items.len()`).
        f: *const F,
        panic: Mutex<Option<Box<dyn Any + Send>>>,
        /// Signalled by the worker that completes the final item, so the
        /// caller can sleep instead of spinning on stragglers.
        done_lock: Mutex<()>,
        done_cv: Condvar,
    }

    // Items are handed across threads (Send) and the closure is invoked
    // concurrently (Sync); the UnsafeCell slots are made exclusive by the
    // claim cursor.
    unsafe impl<T: Send, F: Sync> Send for ForEachTask<T, F> {}
    unsafe impl<T: Send, F: Sync> Sync for ForEachTask<T, F> {}

    impl<T: Send, F: Fn(T) + Sync> ForEachTask<T, F> {
        fn new(items: Vec<T>, f: &F) -> Self {
            Self {
                items: items
                    .into_iter()
                    .map(|i| UnsafeCell::new(Some(i)))
                    .collect(),
                cursor: AtomicUsize::new(0),
                done: AtomicUsize::new(0),
                f,
                panic: Mutex::new(None),
                done_lock: Mutex::new(()),
                done_cv: Condvar::new(),
            }
        }

        fn finished(&self) -> bool {
            self.done.load(Ordering::Acquire) >= self.items.len()
        }
    }

    impl<T: Send, F: Fn(T) + Sync> Task for ForEachTask<T, F> {
        fn run(&self) {
            loop {
                let i = self.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= self.items.len() {
                    return;
                }
                // The cursor grants exclusive access to slot i.
                let item =
                    unsafe { (*self.items[i].get()).take() }.expect("pool item claimed twice");
                let f = unsafe { &*self.f };
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(item))) {
                    *self.panic.lock().unwrap() = Some(p);
                }
                if self.done.fetch_add(1, Ordering::Release) + 1 >= self.items.len() {
                    let _g = self.done_lock.lock().unwrap();
                    self.done_cv.notify_all();
                }
            }
        }
    }

    /// Run `items` through `f` on the global pool, with the calling thread
    /// participating. Blocks until every item has been processed; if any
    /// closure invocation panicked, one of the payloads is re-raised here.
    pub(crate) fn run_for_each<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: F) {
        let n = items.len();
        let pool = global();
        if pool.threads <= 1 || n <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let task = Arc::new(ForEachTask::new(items, &f));
        let job: Job = {
            let local: Arc<dyn Task + '_> = task.clone();
            // Lifetime erasure: job handles may outlive this call (stale
            // entries in a deque), but a post-completion `run` only reads
            // the exhausted cursor inside the Arc-owned header and returns
            // without touching `f` or any item.
            unsafe { std::mem::transmute::<Arc<dyn Task + '_>, Arc<dyn Task + 'static>>(local) }
        };
        // The submitting thread participates as one of the runners, so
        // enqueue at most threads - 1 job copies: total concurrent
        // executors never exceed the configured thread count.
        pool.submit(&job, (pool.threads - 1).min(n - 1).max(1));
        // Claim and run items on this thread too.
        job.run();
        // Stragglers are items claimed by workers that are still inside
        // `f`. Help with other pool jobs while waiting (keeps nested
        // callers productive) and park on the task's condvar otherwise —
        // no busy spin even when the straggling item runs for a while.
        while !task.finished() {
            if let Some(other) = pool.find_job() {
                other.run();
                continue;
            }
            let guard = task.done_lock.lock().unwrap();
            if !task.finished() {
                let _ = task
                    .done_cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap();
            }
        }
        let panicked = task.panic.lock().unwrap().take();
        if let Some(p) = panicked {
            resume_unwind(p);
        }
    }
}

/// Parallel-iterator entry point: types convertible into a parallel
/// iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

/// The minimal parallel-iterator interface the workspace uses.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Consume the iterator, applying `f` to every item across threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send;
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        pool::run_for_each(self.items, f);
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        (0..100usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|i| {
                hits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn mutable_borrows_via_items() {
        let mut data = vec![0u64; 64];
        let tasks: Vec<(usize, &mut u64)> = data.iter_mut().enumerate().collect();
        tasks.into_par_iter().for_each(|(i, slot)| {
            *slot = (i * i) as u64;
        });
        assert_eq!(data[9], 81);
        assert_eq!(data[63], 3969);
    }

    #[test]
    fn empty_and_single() {
        Vec::<usize>::new().into_par_iter().for_each(|_| panic!());
        let hit = AtomicUsize::new(0);
        vec![7usize].into_par_iter().for_each(|v| {
            hit.store(v, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn build_global_is_idempotent() {
        assert!(crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .is_ok());
        assert!(crate::ThreadPoolBuilder::new()
            .num_threads(8)
            .build_global()
            .is_ok());
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            (0..64usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|i| {
                    if i == 33 {
                        panic!("boom at {i}");
                    }
                });
        });
        assert!(caught.is_err(), "worker panic must surface in for_each");
        // The pool must still be usable afterwards.
        let hits = AtomicUsize::new(0);
        (0..32usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_for_each_completes() {
        let hits = AtomicUsize::new(0);
        (0..8usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|_| {
                (0..16usize)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .for_each(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
            });
        assert_eq!(hits.load(Ordering::Relaxed), 128);
    }
}
