//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the property-testing surface it uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] /
//!   [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map`, implemented for ranges,
//!   tuples, [`prelude::Just`] and [`prelude::any`],
//! * [`collection::vec`].
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test's module path and name). There is **no
//! shrinking** — a failing case panics with the ordinary assertion
//! message. That trades minimal counterexamples for zero dependencies,
//! which is the right trade for a hermetic CI environment.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Runner configuration (only the `cases` knob is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of pseudo-random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Like [`ProptestConfig::with_cases`], but the `PROPTEST_CASES`
        /// environment variable overrides the in-code default — the same
        /// knob real proptest honours, used by CI to raise the case count
        /// without touching the tests.
        pub fn with_cases_env(default_cases: u32) -> Self {
            Self {
                cases: env_cases().unwrap_or(default_cases),
            }
        }
    }

    /// `PROPTEST_CASES`, if set and parseable.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: env_cases().unwrap_or(256),
            }
        }
    }

    /// Why a single test case did not pass: either the inputs were
    /// rejected by `prop_assume!` (the case is skipped) or an assertion
    /// failed (the test fails).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Reject(String),
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Reject(r) => write!(f, "input rejected: {r}"),
                Self::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// Result type of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test RNG. The resolved seed is kept so a failing
    /// case can be reported and replayed (`PROPTEST_SEED=<seed>`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
        seed: u64,
    }

    impl TestRng {
        /// Seeded from the fully qualified test name (stable across runs)
        /// unless `PROPTEST_SEED` overrides it.
        pub fn for_test(name: &str) -> Self {
            let seed = match std::env::var("PROPTEST_SEED") {
                Ok(s) => s.parse().unwrap_or_else(|_| fnv1a(s.as_bytes())),
                Err(_) => fnv1a(name.as_bytes()),
            };
            Self::from_seed(seed)
        }

        /// Explicitly seeded RNG — the replay entry point.
        pub fn from_seed(seed: u64) -> Self {
            Self {
                inner: StdRng::seed_from_u64(seed),
                seed,
            }
        }

        /// The seed this RNG started from.
        pub fn seed(&self) -> u64 {
            self.seed
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }

    /// Report a failing case and panic. Mirrors real proptest's regression
    /// persistence in spirit: the repro line (seed + case index) goes to
    /// stderr — so it lands in the job log even when the harness captures
    /// stdout — and is appended to `proptest-regressions/<test>.txt`
    /// relative to the test binary's working directory (the crate root
    /// under `cargo test`), which CI uploads as an artifact on failure.
    /// Replay with `PROPTEST_SEED=<seed>`; cases are deterministic, so
    /// the same seed walks through the same failing case.
    pub fn report_failure(test: &str, case: u32, seed: u64, msg: &str) -> ! {
        let repro = format!(
            "proptest regression: {test} failed at case {case} with seed {seed}; \
             replay with `PROPTEST_SEED={seed} cargo test {}`",
            test.rsplit("::").next().unwrap_or(test),
        );
        eprintln!("{repro}");
        let dir = std::path::Path::new("proptest-regressions");
        let file = dir.join(format!("{}.txt", test.replace("::", "-")));
        let entry = format!("# {msg}\nseed = {seed} # case {case} of {test}\n");
        // Persistence is best-effort: a read-only checkout must not turn
        // the real failure into an I/O panic.
        let persisted = std::fs::create_dir_all(dir)
            .and_then(|()| {
                use std::io::Write;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&file)
                    .and_then(|mut fh| fh.write_all(entry.as_bytes()))
            })
            .is_ok();
        if persisted {
            eprintln!("proptest regression: seed persisted to {}", file.display());
        }
        panic!("proptest case {case} failed (seed {seed}): {msg}");
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply produces a value from the deterministic test RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Number of `prop_oneof!` leaf alternatives below this strategy —
        /// an implementation detail keeping nested unions uniform.
        #[doc(hidden)]
        fn arm_count(&self) -> u32 {
            1
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Binary union combinator behind `prop_oneof!`: picks the left arm
    /// with probability proportional to its leaf count, keeping an
    /// arbitrarily nested chain uniform over its leaves. Requiring
    /// `B::Value = A::Value` (rather than boxing trait objects) lets type
    /// inference flow between the arms, so `Just(Enum::VariantOfGeneric)`
    /// arms pick up their type parameters from sibling arms.
    #[derive(Debug, Clone)]
    pub struct Or<A, B> {
        a: A,
        b: B,
    }

    impl<A, B> Or<A, B> {
        pub fn new(a: A, b: B) -> Self {
            Self { a, b }
        }
    }

    impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for Or<A, B> {
        type Value = A::Value;

        fn generate(&self, rng: &mut TestRng) -> A::Value {
            let (wa, wb) = (self.a.arm_count(), self.b.arm_count());
            if rng.rng().random_range(0..wa + wb) < wa {
                self.a.generate(rng)
            } else {
                self.b.generate(rng)
            }
        }

        fn arm_count(&self) -> u32 {
            self.a.arm_count() + self.b.arm_count()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, roughly unit-scale values: property tests want
            // well-behaved inputs unless they opt into edge cases.
            rng.rng().random_range(-1.0f32..=1.0)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.rng().random_range(-1.0f64..=1.0)
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for a type (`any::<u64>()`).
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng
                .rng()
                .random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(pat in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Strategies are built once and reused for every case; a tuple
            // of strategies is itself a strategy for the tuple of values.
            let strategies = ($($strat,)+);
            for __case in 0..config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                // The case body runs in a closure returning
                // `Result<(), TestCaseError>`, matching real proptest:
                // `prop_assert!` fails the case with `Err`, `prop_assume!`
                // rejects (skips) it, and bodies may `return Err(..)`
                // themselves.
                let mut __run = || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body;
                    ::std::result::Result::Ok(())
                };
                match __run() {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        $crate::test_runner::report_failure(
                            concat!(module_path!(), "::", stringify!($name)),
                            __case,
                            rng.seed(),
                            &msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Assert inside a proptest case; fails the case with
/// `Err(TestCaseError::Fail(..))` like real proptest.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)*)),
            );
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($strat:expr $(,)?) => {
        $strat
    };
    ($strat:expr, $($rest:expr),+ $(,)?) => {
        $crate::strategy::Or::new($strat, $crate::prop_oneof!($($rest),+))
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn env_var_overrides_case_count() {
        // Serial within this test: set, read, restore.
        let prior = std::env::var("PROPTEST_CASES").ok();
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::with_cases_env(3).cases, 7);
        assert_eq!(ProptestConfig::default().cases, 7);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::with_cases_env(3).cases, 3);
        match prior {
            Some(v) => std::env::set_var("PROPTEST_CASES", v),
            None => std::env::remove_var("PROPTEST_CASES"),
        }
        // The explicit constructor ignores the environment.
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..10,
            b in -2isize..=2,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vec(
            dims in (2usize..5, 2usize..5, 1usize..3),
            taps in crate::collection::vec((-1isize..=1, 0.0f64..1.0), 2..=6),
        ) {
            prop_assert!(dims.0 < 5 && dims.2 < 3);
            prop_assert!((2..=6).contains(&taps.len()));
            for (o, w) in taps {
                prop_assert!((-1..=1).contains(&o));
                prop_assert!((0.0..1.0).contains(&w));
            }
        }

        #[test]
        fn oneof_and_map(
            v in prop_oneof![Just(1u32), Just(2), (10u32..20).prop_map(|x| x * 10)],
            any_bool in any::<bool>(),
            _seed in any::<u64>(),
        ) {
            prop_assert!(v == 1 || v == 2 || (100..200).contains(&v));
            prop_assert_eq!(any_bool as u8 | 1, 1 | any_bool as u8);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..u64::MAX;
        let mut r1 = crate::test_runner::TestRng::for_test("x");
        let mut r2 = crate::test_runner::TestRng::for_test("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn seed_replays_the_same_stream() {
        use crate::test_runner::TestRng;
        // A name-derived RNG replayed through `from_seed(seed())` walks
        // the identical stream — the contract the failure repro line
        // (`PROPTEST_SEED=<seed>`) depends on.
        let mut named = TestRng::for_test("some::module::some_test");
        let mut replay = TestRng::from_seed(named.seed());
        assert_eq!(named.seed(), replay.seed());
        for _ in 0..16 {
            assert_eq!(named.next_u64(), replay.next_u64());
        }
    }

    #[test]
    fn failing_case_reports_seed_and_persists_regression() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::report_failure("shim::self_test::synthetic", 3, 42, "boom")
        });
        let payload = result.expect_err("report_failure must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic carries a formatted message");
        assert!(msg.contains("seed 42"), "repro seed missing: {msg}");
        assert!(msg.contains("case 3"), "case index missing: {msg}");
        let file = std::path::Path::new("proptest-regressions/shim-self_test-synthetic.txt");
        let body = std::fs::read_to_string(file).expect("regression file persisted");
        assert!(body.contains("seed = 42"), "seed not persisted: {body}");
        assert!(
            body.contains("boom"),
            "failure message not persisted: {body}"
        );
        // Clean up so repeated local runs do not accumulate entries.
        std::fs::remove_file(file).ok();
        std::fs::remove_dir("proptest-regressions").ok();
    }
}
