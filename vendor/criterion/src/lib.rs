//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmarking surface its `benches/` use: benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput` and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology (deliberately simple, no statistics machinery): each
//! benchmark is warmed up briefly, then timed over `sample_size` samples
//! whose iteration count targets ~25 ms of wall clock per sample. The
//! reported numbers are the minimum, mean and max per-iteration times.
//! Passing `--bench` on the command line (as `cargo bench` does) is
//! accepted and ignored; any other free argument acts as a substring
//! filter on benchmark names, mirroring criterion's CLI.

use std::time::{Duration, Instant};

/// Throughput annotation; recorded and echoed, not otherwise interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-sample timing loop handle.
pub struct Bencher {
    /// Total time and iterations measured for the current benchmark.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the closure. The routine picks an iteration count targeting
    /// ~25 ms per sample, then records `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find iters/sample.
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed > Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed / iters as u32;
            }
            iters *= 4;
        };
        let target = Duration::from_millis(25);
        let iters_per_sample =
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.run(full, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.run(full, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, name: String, mut f: F) {
        if !self.criterion.matches(&name) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&name);
        if let Some(t) = self.throughput {
            if let Some(mean) = b
                .samples
                .iter()
                .sum::<Duration>()
                .checked_div(b.samples.len().max(1) as u32)
            {
                let (count, unit) = match t {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                if count > 0 && mean.as_nanos() > 0 {
                    let rate = count as f64 / mean.as_secs_f64();
                    println!("{:<50} thrpt: {rate:.1} {unit}/s", "");
                }
            }
        }
    }

    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parse criterion-ish CLI arguments: `--bench` (ignored), `--flag`
    /// style options (ignored), and a free-form name filter.
    pub fn from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
        }
        Self { filter }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        if self.matches(&name) {
            let mut b = Bencher {
                samples: Vec::new(),
                sample_size: 10,
            };
            f(&mut b);
            b.report(&name);
        }
        self
    }

    pub fn final_summary(&self) {}
}

/// Re-export for compatibility: criterion 0.5 still offers its own
/// `black_box`; the std one is what it forwards to on recent toolchains.
pub use std::hint::black_box;

/// Declare a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(b.samples.len(), 3);
        b.report("smoke");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            filter: Some("no-such-benchmark".into()),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .throughput(Throughput::Elements(4))
            .bench_function("skipped", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
